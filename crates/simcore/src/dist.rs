//! Service-time distribution families.
//!
//! Everything the paper's §2.1 analysis sweeps lives here: the unit-mean
//! families of Figure 2 (Weibull, Pareto, two-point), the light-tailed
//! ladder the two-moment analytics are validated on (deterministic →
//! Erlang → exponential → hyper-exponential), the empirical/discrete
//! distributions behind Figure 3 and the §2.4 flow-size workload, and the
//! composition helpers ([`Mixture`], [`Shifted`]) the storage and WAN
//! models build their noise processes from.
//!
//! Design rules, enforced throughout:
//!
//! * **Closed-form first two moments.** [`Distribution::mean`] and
//!   [`Distribution::variance`] are exact (or `f64::INFINITY` where the
//!   moment diverges, e.g. Pareto with `α ≤ 2`), never estimated — the
//!   Pollaczek–Khinchine and two-moment layers in `queuesim` validate
//!   *simulation against these formulas*, so they must not share an
//!   estimation path with the sampler.
//! * **Determinism.** Sampling draws only from [`Rng`], so every
//!   experiment is bit-reproducible from its seed.
//! * **Unit-mean normalization.** Each family offers a unit-mean
//!   constructor (`unit`, `unit_mean`, `scaled_to_unit_mean`, …) because
//!   the paper holds `E[S] = 1` while varying shape.
//!
//! ## Example
//!
//! ```
//! use simcore::dist::{Distribution, Exponential, Pareto};
//! use simcore::rng::Rng;
//!
//! let mut rng = Rng::seed_from(7);
//! let exp = Exponential::unit();
//! let par = Pareto::unit_mean(2.1);
//! assert!((exp.mean() - 1.0).abs() < 1e-12);
//! assert!((par.mean() - 1.0).abs() < 1e-12);
//! // Same mean, very different variability:
//! assert!((exp.scv() - 1.0).abs() < 1e-12);
//! assert!(par.scv() > 4.0);
//! let x = exp.sample(&mut rng);
//! assert!(x > 0.0);
//! ```

use crate::rng::Rng;
use crate::special::ln_gamma;
use std::sync::Arc;

/// A (nonnegative, continuous or discrete) service-time distribution with
/// exact first two moments.
///
/// The trait is object-safe; use [`DynDist`] (an `Arc`) where heterogeneous
/// distributions must be stored, cloned, and shared.
pub trait Distribution: std::fmt::Debug + Send + Sync {
    /// Draws one variate. All randomness comes from `rng`, so sampling is
    /// bit-reproducible given the seed.
    fn sample(&self, rng: &mut Rng) -> f64;

    /// Exact mean, or `f64::INFINITY` when the first moment diverges.
    fn mean(&self) -> f64;

    /// Exact variance, or `f64::INFINITY` when the second moment diverges.
    fn variance(&self) -> f64;

    /// Squared coefficient of variation `Var[S]/E[S]²` — the x-axis of the
    /// paper's variability sweeps (0 = deterministic, 1 = exponential).
    fn scv(&self) -> f64 {
        let m = self.mean();
        self.variance() / (m * m)
    }

    /// Alias for [`scv`](Self::scv) (`c²` in the queueing literature).
    fn cv2(&self) -> f64 {
        self.scv()
    }

    /// Short human-readable name with parameters, for reports and
    /// assertion messages.
    fn label(&self) -> String;
}

/// A shared, heterogeneous distribution handle (cheap to clone).
pub type DynDist = Arc<dyn Distribution>;

/// References to distributions are distributions (lets `&dyn Distribution`
/// satisfy `D: Distribution + Clone` bounds on simulator configs).
impl<D: Distribution + ?Sized> Distribution for &D {
    fn sample(&self, rng: &mut Rng) -> f64 {
        (**self).sample(rng)
    }
    fn mean(&self) -> f64 {
        (**self).mean()
    }
    fn variance(&self) -> f64 {
        (**self).variance()
    }
    fn scv(&self) -> f64 {
        (**self).scv()
    }
    fn label(&self) -> String {
        (**self).label()
    }
}

impl Distribution for Box<dyn Distribution> {
    fn sample(&self, rng: &mut Rng) -> f64 {
        (**self).sample(rng)
    }
    fn mean(&self) -> f64 {
        (**self).mean()
    }
    fn variance(&self) -> f64 {
        (**self).variance()
    }
    fn scv(&self) -> f64 {
        (**self).scv()
    }
    fn label(&self) -> String {
        (**self).label()
    }
}

impl Distribution for Arc<dyn Distribution> {
    fn sample(&self, rng: &mut Rng) -> f64 {
        (**self).sample(rng)
    }
    fn mean(&self) -> f64 {
        (**self).mean()
    }
    fn variance(&self) -> f64 {
        (**self).variance()
    }
    fn scv(&self) -> f64 {
        (**self).scv()
    }
    fn label(&self) -> String {
        (**self).label()
    }
}

// ---------------------------------------------------------------------------
// Degenerate and uniform
// ---------------------------------------------------------------------------

/// A point mass: every sample is exactly `value`. The paper's conjectured
/// worst case for replication (Theorem 2 / Conjecture 1).
#[derive(Clone, Copy, Debug)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Point mass at `value` (must be finite and ≥ 0).
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite() && value >= 0.0, "Deterministic({value})");
        Deterministic { value }
    }

    /// Point mass at 1 — the unit-mean member.
    pub fn unit() -> Self {
        Deterministic::new(1.0)
    }
}

impl Distribution for Deterministic {
    fn sample(&self, _rng: &mut Rng) -> f64 {
        self.value
    }
    fn mean(&self) -> f64 {
        self.value
    }
    fn variance(&self) -> f64 {
        0.0
    }
    fn label(&self) -> String {
        format!("Deterministic({})", self.value)
    }
}

/// Uniform on `[lo, hi)`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Uniform on `[lo, hi)` with `0 ≤ lo ≤ hi`, both finite (service
    /// times are nonnegative).
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi,
            "Uniform({lo}, {hi})"
        );
        Uniform { lo, hi }
    }

    /// Unit-mean member with the given half-width `w ∈ [0, 1]`:
    /// uniform on `[1 − w, 1 + w]`.
    pub fn unit_mean(half_width: f64) -> Self {
        assert!((0.0..=1.0).contains(&half_width));
        Uniform::new(1.0 - half_width, 1.0 + half_width)
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut Rng) -> f64 {
        rng.f64_range(self.lo, self.hi)
    }
    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }
    fn label(&self) -> String {
        format!("Uniform({}, {})", self.lo, self.hi)
    }
}

// ---------------------------------------------------------------------------
// The light-tailed ladder: exponential, Erlang, hyper-exponential
// ---------------------------------------------------------------------------

/// Exponential with rate `λ` (mean `1/λ`, scv 1). Theorem 1's service law.
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Exponential with the given rate (> 0).
    pub fn with_rate(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "Exponential rate {rate}");
        Exponential { rate }
    }

    /// Exponential with the given mean (> 0).
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "Exponential mean {mean}");
        Exponential { rate: 1.0 / mean }
    }

    /// The unit-mean member (rate 1).
    pub fn unit() -> Self {
        Exponential { rate: 1.0 }
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut Rng) -> f64 {
        rng.exponential(self.rate)
    }
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }
    fn label(&self) -> String {
        format!("Exponential(rate={})", self.rate)
    }
}

/// Erlang-k: the sum of `k` i.i.d. exponentials (scv `1/k`) — the bridge
/// between deterministic (`k → ∞`) and exponential (`k = 1`) service.
#[derive(Clone, Copy, Debug)]
pub struct Erlang {
    k: u32,
    rate: f64,
}

impl Erlang {
    /// Erlang with `k ≥ 1` stages, each at `rate` (> 0). Mean `k/rate`.
    pub fn new(k: u32, rate: f64) -> Self {
        assert!(k >= 1, "Erlang needs k >= 1");
        assert!(rate > 0.0 && rate.is_finite(), "Erlang rate {rate}");
        Erlang { k, rate }
    }

    /// The unit-mean member with `k` stages (per-stage rate `k`).
    pub fn unit_mean(k: u32) -> Self {
        Erlang::new(k, k as f64)
    }
}

impl Distribution for Erlang {
    fn sample(&self, rng: &mut Rng) -> f64 {
        // Sum of exponentials: exact, branch-free, and k is small in every
        // workload here (≤ ~16).
        (0..self.k).map(|_| rng.exponential(self.rate)).sum()
    }
    fn mean(&self) -> f64 {
        self.k as f64 / self.rate
    }
    fn variance(&self) -> f64 {
        self.k as f64 / (self.rate * self.rate)
    }
    fn label(&self) -> String {
        format!("Erlang(k={}, rate={})", self.k, self.rate)
    }
}

/// Two-branch hyper-exponential (H₂) with balanced means — the standard
/// two-moment fit for scv > 1: branch `i` is chosen with probability `pᵢ`
/// and then serviced at rate `μᵢ`, with `p₁/μ₁ = p₂/μ₂`.
#[derive(Clone, Copy, Debug)]
pub struct HyperExponential {
    p1: f64,
    r1: f64,
    r2: f64,
}

impl HyperExponential {
    /// General two-branch form: probability `p1` of rate `r1`, else `r2`.
    pub fn new(p1: f64, r1: f64, r2: f64) -> Self {
        assert!((0.0..=1.0).contains(&p1), "H2 p1 {p1}");
        assert!(r1 > 0.0 && r2 > 0.0, "H2 rates must be positive");
        HyperExponential { p1, r1, r2 }
    }

    /// The unit-mean member with the given squared coefficient of
    /// variation (`scv ≥ 1`; `scv = 1` degenerates to `Exponential::unit`),
    /// using the balanced-means parameterization.
    pub fn unit_mean_with_scv(scv: f64) -> Self {
        assert!(scv >= 1.0, "H2 needs scv >= 1, got {scv}");
        // p1 = (1 + sqrt((c²−1)/(c²+1)))/2, μi = 2 pi: mean = 1, scv = c².
        let g = ((scv - 1.0) / (scv + 1.0)).sqrt();
        let p1 = 0.5 * (1.0 + g);
        let p2 = 1.0 - p1;
        HyperExponential::new(p1, 2.0 * p1, 2.0 * p2)
    }

    fn second_raw(&self) -> f64 {
        let p2 = 1.0 - self.p1;
        2.0 * (self.p1 / (self.r1 * self.r1) + p2 / (self.r2 * self.r2))
    }
}

impl Distribution for HyperExponential {
    fn sample(&self, rng: &mut Rng) -> f64 {
        let rate = if rng.chance(self.p1) { self.r1 } else { self.r2 };
        rng.exponential(rate)
    }
    fn mean(&self) -> f64 {
        self.p1 / self.r1 + (1.0 - self.p1) / self.r2
    }
    fn variance(&self) -> f64 {
        let m = self.mean();
        self.second_raw() - m * m
    }
    fn label(&self) -> String {
        format!("H2(p1={:.4}, r1={:.4}, r2={:.4})", self.p1, self.r1, self.r2)
    }
}

// ---------------------------------------------------------------------------
// Heavy tails: Pareto, bounded Pareto, Weibull, log-normal
// ---------------------------------------------------------------------------

/// Pareto with tail index `α` and minimum `x_m`:
/// `P(X > x) = (x_m/x)^α` for `x ≥ x_m`. The mean diverges for `α ≤ 1`
/// and the variance for `α ≤ 2` — Theorem 3's regime.
#[derive(Clone, Copy, Debug)]
pub struct Pareto {
    alpha: f64,
    xm: f64,
}

impl Pareto {
    /// Pareto with tail index `alpha` (> 0) and scale `xm` (> 0).
    pub fn new(alpha: f64, xm: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "Pareto alpha {alpha}");
        assert!(xm > 0.0 && xm.is_finite(), "Pareto xm {xm}");
        Pareto { alpha, xm }
    }

    /// The unit-mean member with tail index `alpha > 1`
    /// (`x_m = (α−1)/α`).
    pub fn unit_mean(alpha: f64) -> Self {
        assert!(alpha > 1.0, "unit-mean Pareto needs alpha > 1");
        Pareto::new(alpha, (alpha - 1.0) / alpha)
    }

    /// The Figure 2(b) parameterization: unit-mean Pareto with tail index
    /// `α = 1 + 1/β` for `β ∈ (0, 1)`. `β → 0` is nearly deterministic;
    /// `β → 1` approaches `α = 2`, where the variance blows up.
    ///
    /// This is the only mapping consistent with the figure's behaviour at
    /// both ends of its axis: the threshold must fall toward the
    /// deterministic ~0.26 as `β → 0` (so `α` must diverge there, ruling
    /// out `α = 1 + β`) and climb toward the 50 % ceiling as `β → 1`
    /// (finite mean, exploding variance — exactly `α → 2`). A direct
    /// check against the paper's axis label is still outstanding: only
    /// the abstract is on file (see PAPERS.md), and
    /// `pareto_inverse_scale_axis_endpoints` pins the mapping so any
    /// future correction is a deliberate, test-visible change.
    pub fn unit_mean_inverse_scale(beta: f64) -> Self {
        assert!(beta > 0.0 && beta < 1.0, "Pareto inverse scale {beta}");
        Pareto::unit_mean(1.0 + 1.0 / beta)
    }

    /// The tail index α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut Rng) -> f64 {
        // Inverse CDF on U in (0, 1]: x_m · U^{−1/α}.
        self.xm * rng.f64_open().powf(-1.0 / self.alpha)
    }
    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.xm / (self.alpha - 1.0)
        }
    }
    fn variance(&self) -> f64 {
        if self.alpha <= 2.0 {
            f64::INFINITY
        } else {
            let a = self.alpha;
            self.xm * self.xm * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
        }
    }
    fn label(&self) -> String {
        format!("Pareto(alpha={}, xm={:.4})", self.alpha, self.xm)
    }
}

/// Pareto truncated to `[lo, hi]`: density `∝ x^{−α−1}` on the interval.
/// All moments are finite regardless of `α`, which is what lets the §2.2
/// file-size workload be heavy-spread without terabyte outliers.
#[derive(Clone, Copy, Debug)]
pub struct BoundedPareto {
    alpha: f64,
    lo: f64,
    hi: f64,
}

impl BoundedPareto {
    /// Bounded Pareto with tail index `alpha > 0` on `[lo, hi]`,
    /// `0 < lo < hi`.
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "BoundedPareto alpha {alpha}");
        assert!(0.0 < lo && lo < hi && hi.is_finite(), "BoundedPareto [{lo}, {hi}]");
        BoundedPareto { alpha, lo, hi }
    }

    /// Raw moment `E[X^n]` (closed form; handles the `α = n` removable
    /// singularity via the logarithmic limit).
    fn raw_moment(&self, n: f64) -> f64 {
        let a = self.alpha;
        let (l, h) = (self.lo, self.hi);
        // Normalizing constant of the truncated density: C = α l^α / (1 − (l/h)^α).
        let c = a * l.powf(a) / (1.0 - (l / h).powf(a));
        if (a - n).abs() < 1e-12 {
            // ∫ x^{n−α−1} dx degenerates to a log (n − α ≈ 0).
            c * (h / l).ln() * l.powf(n - a)
        } else {
            c * (h.powf(n - a) - l.powf(n - a)) / (n - a)
        }
    }
}

impl Distribution for BoundedPareto {
    fn sample(&self, rng: &mut Rng) -> f64 {
        // Inverse CDF of the truncated Pareto.
        let u = rng.f64();
        let la = self.lo.powf(-self.alpha);
        let ha = self.hi.powf(-self.alpha);
        (la - u * (la - ha)).powf(-1.0 / self.alpha)
    }
    fn mean(&self) -> f64 {
        self.raw_moment(1.0)
    }
    fn variance(&self) -> f64 {
        let m = self.mean();
        self.raw_moment(2.0) - m * m
    }
    fn label(&self) -> String {
        format!("BoundedPareto(alpha={}, {}..{})", self.alpha, self.lo, self.hi)
    }
}

/// Weibull with shape `k` and scale `λ`:
/// `P(X > x) = e^{−(x/λ)^k}`. `k = 1` is exponential; `k < 1` is
/// heavier-than-exponential (the Figure 2(a) direction).
#[derive(Clone, Copy, Debug)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Weibull with the given shape and scale (both > 0).
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && shape.is_finite(), "Weibull shape {shape}");
        assert!(scale > 0.0 && scale.is_finite(), "Weibull scale {scale}");
        Weibull { shape, scale }
    }

    /// The unit-mean member with the given shape
    /// (`λ = 1/Γ(1 + 1/k)`).
    pub fn unit_mean(shape: f64) -> Self {
        assert!(shape > 0.0, "Weibull shape {shape}");
        let scale = (-ln_gamma(1.0 + 1.0 / shape)).exp();
        Weibull::new(shape, scale)
    }

    /// The Figure 2(a) parameterization: unit-mean Weibull with shape
    /// `k = 1/γ`. `γ < 1` is lighter than exponential, `γ > 1` heavier.
    pub fn unit_mean_inverse_shape(gamma: f64) -> Self {
        assert!(gamma > 0.0, "Weibull inverse shape {gamma}");
        Weibull::unit_mean(1.0 / gamma)
    }
}

impl Distribution for Weibull {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.scale * (-rng.f64_open().ln()).powf(1.0 / self.shape)
    }
    fn mean(&self) -> f64 {
        self.scale * ln_gamma(1.0 + 1.0 / self.shape).exp()
    }
    fn variance(&self) -> f64 {
        let g1 = ln_gamma(1.0 + 1.0 / self.shape).exp();
        let g2 = ln_gamma(1.0 + 2.0 / self.shape).exp();
        self.scale * self.scale * (g2 - g1 * g1)
    }
    fn label(&self) -> String {
        format!("Weibull(k={}, scale={:.4})", self.shape, self.scale)
    }
}

/// Log-normal: `exp(μ + σZ)` for standard normal `Z`. The WAN models'
/// workhorse (RTT jitter, resolver miss times, memcached service bodies).
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Log-normal from the underlying normal's parameters (`sigma ≥ 0`).
    pub fn from_mu_sigma(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        LogNormal { mu, sigma }
    }

    /// Log-normal with the given *distribution* mean (> 0) and underlying
    /// normal σ: `μ = ln(mean) − σ²/2`.
    pub fn with_mean_sigma(mean: f64, sigma: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "LogNormal mean {mean}");
        LogNormal::from_mu_sigma(mean.ln() - 0.5 * sigma * sigma, sigma)
    }

    /// The unit-mean member with the given σ.
    pub fn unit_mean(sigma: f64) -> Self {
        LogNormal::with_mean_sigma(1.0, sigma)
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        (self.mu + self.sigma * rng.normal()).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }
    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }
    fn label(&self) -> String {
        format!("LogNormal(mu={:.4}, sigma={})", self.mu, self.sigma)
    }
}

// ---------------------------------------------------------------------------
// Two-point and composition
// ---------------------------------------------------------------------------

/// The paper's Figure 2(c) two-point family: mass `p` at `1/2` and mass
/// `1 − p` at `1/2 + 1/(2(1−p))`. Unit mean for every `p ∈ [0, 1)`;
/// `p = 0` is the deterministic unit; as `p → 1` a shrinking fraction of
/// requests carries a growing "giant" service time
/// (`Var = p/(4(1−p))`, e.g. 4.75 at `p = 0.95`).
#[derive(Clone, Copy, Debug)]
pub struct TwoPoint {
    p: f64,
}

impl TwoPoint {
    /// The family member at `p ∈ [0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "TwoPoint p {p}");
        TwoPoint { p }
    }

    /// The common (low) value, `1/2`.
    pub fn low(&self) -> f64 {
        0.5
    }

    /// The rare (giant) value, `1/2 + 1/(2(1−p))`.
    pub fn high(&self) -> f64 {
        0.5 + 0.5 / (1.0 - self.p)
    }
}

impl Distribution for TwoPoint {
    fn sample(&self, rng: &mut Rng) -> f64 {
        if rng.chance(self.p) {
            self.low()
        } else {
            self.high()
        }
    }
    fn mean(&self) -> f64 {
        1.0
    }
    fn variance(&self) -> f64 {
        self.p / (4.0 * (1.0 - self.p))
    }
    fn label(&self) -> String {
        format!("TwoPoint(p={})", self.p)
    }
}

/// A finite mixture of distributions: component `i` is selected with its
/// (normalized) weight, then sampled. Moments are exact via the law of
/// total expectation/variance.
#[derive(Clone, Debug)]
pub struct Mixture {
    components: Vec<(f64, DynDist)>,
}

impl Mixture {
    /// A mixture from `(weight, distribution)` pairs. Weights must be
    /// nonnegative with a positive sum; they are normalized internally.
    pub fn new(components: Vec<(f64, DynDist)>) -> Self {
        assert!(!components.is_empty(), "empty mixture");
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(
            total > 0.0 && total.is_finite() && components.iter().all(|(w, _)| *w >= 0.0),
            "mixture weights must be nonnegative with positive sum"
        );
        Mixture {
            components: components.into_iter().map(|(w, d)| (w / total, d)).collect(),
        }
    }

    /// Convenience two-component mixture.
    pub fn of_two<A, B>(w1: f64, d1: A, w2: f64, d2: B) -> Self
    where
        A: Distribution + 'static,
        B: Distribution + 'static,
    {
        Mixture::new(vec![(w1, Arc::new(d1) as DynDist), (w2, Arc::new(d2) as DynDist)])
    }

    fn second_raw(&self) -> f64 {
        self.components
            .iter()
            .map(|(w, d)| {
                let m = d.mean();
                w * (d.variance() + m * m)
            })
            .sum()
    }

    /// Selects the component for a uniform draw `u`. Cumulative-weight
    /// rounding can leave `u` past every component; the fallback must then
    /// pick the last *positive-weight* component — a trailing zero-weight
    /// entry has probability zero and must never be sampled.
    fn component_for(&self, mut u: f64) -> &DynDist {
        for (w, d) in &self.components {
            if u < *w {
                return d;
            }
            u -= w;
        }
        &self
            .components
            .iter()
            .rev()
            .find(|(w, _)| *w > 0.0)
            .expect("mixture has a positive-weight component")
            .1
    }
}

impl Distribution for Mixture {
    fn sample(&self, rng: &mut Rng) -> f64 {
        let u = rng.f64();
        self.component_for(u).sample(rng)
    }
    fn mean(&self) -> f64 {
        self.components.iter().map(|(w, d)| w * d.mean()).sum()
    }
    fn variance(&self) -> f64 {
        let m = self.mean();
        self.second_raw() - m * m
    }
    fn label(&self) -> String {
        let parts: Vec<String> = self
            .components
            .iter()
            .map(|(w, d)| format!("{w:.4}*{}", d.label()))
            .collect();
        format!("Mixture({})", parts.join(" + "))
    }
}

/// A distribution translated by a constant offset: `offset + X`.
/// Models a fixed cost (propagation, syscall) in front of a variable one.
#[derive(Clone, Debug)]
pub struct Shifted {
    offset: f64,
    inner: DynDist,
}

impl Shifted {
    /// Shifts `inner` right by `offset ≥ 0`.
    pub fn new<D: Distribution + 'static>(offset: f64, inner: D) -> Self {
        assert!(offset >= 0.0 && offset.is_finite(), "Shifted offset {offset}");
        Shifted {
            offset,
            inner: Arc::new(inner),
        }
    }

    /// Shifts an already-shared distribution.
    pub fn of(offset: f64, inner: DynDist) -> Self {
        assert!(offset >= 0.0 && offset.is_finite(), "Shifted offset {offset}");
        Shifted { offset, inner }
    }
}

impl Distribution for Shifted {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.offset + self.inner.sample(rng)
    }
    fn mean(&self) -> f64 {
        self.offset + self.inner.mean()
    }
    fn variance(&self) -> f64 {
        self.inner.variance()
    }
    fn label(&self) -> String {
        format!("Shifted({} + {})", self.offset, self.inner.label())
    }
}

// ---------------------------------------------------------------------------
// Discrete empirical (alias method)
// ---------------------------------------------------------------------------

/// A finite discrete distribution over arbitrary `f64` support values,
/// sampled in O(1) by Walker/Vose's alias method. This is both the
/// Figure 3 object (random unit-mean discrete service laws) and the §2.4
/// empirical flow-size workload.
#[derive(Clone, Debug)]
pub struct DiscreteEmpirical {
    values: Vec<f64>,
    probs: Vec<f64>,
    /// Alias table: `accept[i]` is the probability of keeping column `i`,
    /// otherwise `alias[i]` is emitted.
    accept: Vec<f64>,
    alias: Vec<usize>,
}

impl DiscreteEmpirical {
    /// Builds from `(value, weight)` pairs. Weights must be nonnegative
    /// with a positive sum; they are normalized to probabilities.
    /// Zero-weight values never sample.
    pub fn new(pairs: &[(f64, f64)]) -> Self {
        assert!(!pairs.is_empty(), "empty discrete distribution");
        let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
        assert!(
            total > 0.0 && total.is_finite() && pairs.iter().all(|&(_, w)| w >= 0.0),
            "discrete weights must be nonnegative with positive sum"
        );
        let n = pairs.len();
        let values: Vec<f64> = pairs.iter().map(|&(v, _)| v).collect();
        let probs: Vec<f64> = pairs.iter().map(|&(_, w)| w / total).collect();

        // Vose's alias construction on probabilities scaled by n.
        let mut scaled: Vec<f64> = probs.iter().map(|p| p * n as f64).collect();
        let mut accept = vec![0.0f64; n];
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            accept[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers (numerical slack): they keep their own column.
        for &i in small.iter().chain(large.iter()) {
            accept[i] = 1.0;
            alias[i] = i;
        }
        DiscreteEmpirical {
            values,
            probs,
            accept,
            alias,
        }
    }

    /// The same distribution rescaled so its mean is exactly 1.
    ///
    /// # Panics
    /// Panics if the current mean is not positive and finite.
    pub fn scaled_to_unit_mean(&self) -> Self {
        let m = self.mean();
        assert!(m > 0.0 && m.is_finite(), "cannot normalize mean {m}");
        let pairs: Vec<(f64, f64)> = self
            .values
            .iter()
            .zip(&self.probs)
            .map(|(&v, &p)| (v / m, p))
            .collect();
        DiscreteEmpirical::new(&pairs)
    }

    /// Support values (in construction order).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Normalized probabilities (parallel to [`values`](Self::values)).
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }
}

impl Distribution for DiscreteEmpirical {
    fn sample(&self, rng: &mut Rng) -> f64 {
        let i = rng.index(self.values.len());
        if rng.f64() < self.accept[i] {
            self.values[i]
        } else {
            self.values[self.alias[i]]
        }
    }
    fn mean(&self) -> f64 {
        self.values.iter().zip(&self.probs).map(|(v, p)| v * p).sum()
    }
    fn variance(&self) -> f64 {
        let m = self.mean();
        self.values
            .iter()
            .zip(&self.probs)
            .map(|(v, p)| p * (v - m) * (v - m))
            .sum()
    }
    fn label(&self) -> String {
        format!("DiscreteEmpirical(n={})", self.values.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sample-moment check against the closed forms, at a fixed seed.
    /// Tolerances are on the *relative* error of the mean and variance
    /// (variance tolerance is looser: its estimator has ~scv²·kurtosis
    /// noise).
    fn check_moments(d: &dyn Distribution, seed: u64, n: usize, tol_mean: f64, tol_var: f64) {
        let mut rng = Rng::seed_from(seed);
        let mut sum = 0.0f64;
        let mut sum2 = 0.0f64;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!(x.is_finite(), "{}: non-finite sample", d.label());
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = (sum2 / n as f64 - mean * mean).max(0.0);
        let em = d.mean();
        let ev = d.variance();
        assert!(
            (mean - em).abs() <= tol_mean * em.abs().max(1e-9),
            "{}: sample mean {mean} vs exact {em}",
            d.label()
        );
        assert!(
            (var - ev).abs() <= tol_var * ev.abs().max(1e-9),
            "{}: sample var {var} vs exact {ev}",
            d.label()
        );
    }

    /// Two same-seed streams must be byte-identical.
    fn check_deterministic(d: &dyn Distribution, seed: u64) {
        let mut a = Rng::seed_from(seed);
        let mut b = Rng::seed_from(seed);
        for _ in 0..1_000 {
            let x = d.sample(&mut a);
            let y = d.sample(&mut b);
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{}: same seed diverged",
                d.label()
            );
        }
    }

    /// Every family in one table: (distribution, mean tol, var tol).
    fn all_families() -> Vec<(Box<dyn Distribution>, f64, f64)> {
        vec![
            (Box::new(Deterministic::unit()), 1e-12, 1e-12),
            (Box::new(Deterministic::new(3.5)), 1e-12, 1e-12),
            (Box::new(Uniform::new(0.5, 1.5)), 0.005, 0.02),
            (Box::new(Uniform::unit_mean(0.25)), 0.005, 0.02),
            (Box::new(Exponential::unit()), 0.01, 0.03),
            (Box::new(Exponential::with_mean(0.25)), 0.01, 0.03),
            (Box::new(Exponential::with_rate(4.0)), 0.01, 0.03),
            (Box::new(Erlang::unit_mean(2)), 0.01, 0.03),
            (Box::new(Erlang::unit_mean(8)), 0.01, 0.03),
            (Box::new(Erlang::new(3, 0.5)), 0.01, 0.03),
            (Box::new(HyperExponential::unit_mean_with_scv(1.0)), 0.01, 0.03),
            (Box::new(HyperExponential::unit_mean_with_scv(4.0)), 0.01, 0.05),
            (Box::new(HyperExponential::unit_mean_with_scv(16.0)), 0.02, 0.10),
            (Box::new(Pareto::unit_mean(3.0)), 0.01, 0.10),
            (Box::new(Pareto::new(4.0, 2.0)), 0.01, 0.10),
            // The alpha = 1.2 bounded Pareto's second moment is dominated
            // by draws near the 4 MB cap (~2e-5 of the mass), so the
            // sample-variance estimator has ~25% standard error even at
            // 400k draws; the mean is still tight.
            (Box::new(BoundedPareto::new(1.2, 256.0, 4.0 * 1024.0 * 1024.0)), 0.05, 0.60),
            (Box::new(BoundedPareto::new(2.0, 1.0, 100.0)), 0.01, 0.10),
            (Box::new(Weibull::unit_mean(2.0)), 0.01, 0.03),
            (Box::new(Weibull::unit_mean_inverse_shape(2.0)), 0.02, 0.15),
            (Box::new(LogNormal::unit_mean(0.5)), 0.01, 0.05),
            (Box::new(LogNormal::with_mean_sigma(2.0e-3, 1.0)), 0.02, 0.10),
            (Box::new(TwoPoint::new(0.0)), 1e-12, 1e-9),
            (Box::new(TwoPoint::new(0.5)), 0.01, 0.03),
            (Box::new(TwoPoint::new(0.9)), 0.01, 0.05),
            (
                Box::new(Mixture::of_two(
                    0.9,
                    Deterministic::new(0.0),
                    0.1,
                    Exponential::with_mean(10.0),
                )),
                0.02,
                0.05,
            ),
            (Box::new(Shifted::new(2.0, Exponential::unit())), 0.01, 0.03),
            (
                Box::new(DiscreteEmpirical::new(&[(1.0, 0.5), (2.0, 0.3), (10.0, 0.2)])),
                0.01,
                0.03,
            ),
        ]
    }

    #[test]
    fn moment_matching_all_families() {
        for (i, (d, tm, tv)) in all_families().into_iter().enumerate() {
            check_moments(d.as_ref(), 0xD157 + i as u64, 400_000, tm, tv);
        }
    }

    #[test]
    fn determinism_all_families() {
        for (i, (d, _, _)) in all_families().into_iter().enumerate() {
            check_deterministic(d.as_ref(), 0x5EED + i as u64);
        }
    }

    #[test]
    fn unit_mean_constructors_are_exactly_unit() {
        let units: Vec<Box<dyn Distribution>> = vec![
            Box::new(Deterministic::unit()),
            Box::new(Uniform::unit_mean(0.5)),
            Box::new(Exponential::unit()),
            Box::new(Erlang::unit_mean(5)),
            Box::new(HyperExponential::unit_mean_with_scv(7.0)),
            Box::new(Pareto::unit_mean(2.5)),
            Box::new(Pareto::unit_mean_inverse_scale(0.5)),
            Box::new(Weibull::unit_mean(0.7)),
            Box::new(Weibull::unit_mean_inverse_shape(6.0)),
            Box::new(LogNormal::unit_mean(1.3)),
            Box::new(TwoPoint::new(0.77)),
            Box::new(
                DiscreteEmpirical::new(&[(3.0, 1.0), (9.0, 2.0)]).scaled_to_unit_mean(),
            ),
        ];
        for d in units {
            assert!(
                (d.mean() - 1.0).abs() < 1e-9,
                "{}: mean {}",
                d.label(),
                d.mean()
            );
        }
    }

    #[test]
    fn scv_ladder_is_ordered() {
        // deterministic < Erlang-4 < exponential < H2(4) on variability.
        let scvs = [
            Deterministic::unit().scv(),
            Erlang::unit_mean(4).scv(),
            Exponential::unit().scv(),
            HyperExponential::unit_mean_with_scv(4.0).scv(),
        ];
        assert!(scvs.windows(2).all(|w| w[0] < w[1]), "{scvs:?}");
        assert!((scvs[1] - 0.25).abs() < 1e-12);
        assert!((scvs[2] - 1.0).abs() < 1e-12);
        assert!((scvs[3] - 4.0).abs() < 1e-9);
        // cv2 is an alias.
        assert_eq!(Exponential::unit().cv2(), Exponential::unit().scv());
    }

    #[test]
    fn pareto_moment_divergence() {
        assert!(Pareto::new(0.9, 1.0).mean().is_infinite());
        assert!(Pareto::unit_mean(1.5).mean().is_finite());
        assert!(Pareto::unit_mean(1.5).variance().is_infinite());
        assert!(Pareto::unit_mean(2.1).variance().is_finite());
        // Unit-mean Pareto(alpha): Var = 1/(alpha(alpha-2)).
        let v = Pareto::unit_mean(2.1).variance();
        assert!((v - 1.0 / (2.1 * 0.1)).abs() < 1e-9, "{v}");
    }

    #[test]
    fn pareto_inverse_scale_axis_endpoints() {
        // Pins the Fig 2(b) axis mapping α = 1 + 1/β (see the method docs
        // for why no other mapping fits the figure's endpoints). Changing
        // the mapping must break this test, re-pin the headline band in
        // scripts/check_headlines.sh, and update EXPERIMENTS.md §2.1.
        for (beta, alpha) in [(0.1, 11.0), (0.5, 3.0), (0.9, 1.0 + 1.0 / 0.9), (0.98, 1.0 + 1.0 / 0.98)] {
            let d = Pareto::unit_mean_inverse_scale(beta);
            assert!((d.alpha() - alpha).abs() < 1e-12, "beta={beta}: {}", d.alpha());
            assert!((d.mean() - 1.0).abs() < 1e-12, "beta={beta} mean {}", d.mean());
        }
        // β → 0: tail index diverges, variance vanishes (deterministic
        // limit). β → 1: α → 2 from above, variance diverges.
        assert!(Pareto::unit_mean_inverse_scale(0.05).scv() < 0.01);
        assert!(Pareto::unit_mean_inverse_scale(0.99).scv() > 20.0);
    }

    #[test]
    fn pareto_samples_respect_support() {
        let d = Pareto::unit_mean(2.5);
        let xm = (2.5 - 1.0) / 2.5;
        let mut rng = Rng::seed_from(11);
        for _ in 0..50_000 {
            assert!(d.sample(&mut rng) >= xm);
        }
    }

    #[test]
    fn bounded_pareto_support_and_spread() {
        let d = BoundedPareto::new(1.2, 256.0, 4.0 * 1024.0 * 1024.0);
        let mut rng = Rng::seed_from(13);
        let mut lo_hits = 0;
        for _ in 0..100_000 {
            let x = d.sample(&mut rng);
            assert!((256.0..=4.0 * 1024.0 * 1024.0).contains(&x));
            if x < 1024.0 {
                lo_hits += 1;
            }
        }
        // Heavy concentration at the low end, long reach at the top.
        assert!(lo_hits > 60_000, "only {lo_hits} below 1 KB");
        // Mean around a KB for these parameters (the fig7 workload): the
        // closed form gives ~1315 bytes.
        assert!((500.0..8_000.0).contains(&d.mean()), "mean {}", d.mean());
    }

    #[test]
    fn bounded_pareto_alpha_equals_moment_order() {
        // alpha = 1 hits the removable singularity in E[X]; alpha = 2 in
        // E[X^2]. Check against numerically integrated truth.
        for &(alpha, lo, hi) in &[(1.0, 1.0, 50.0), (2.0, 0.5, 20.0)] {
            let d = BoundedPareto::new(alpha, lo, hi);
            check_moments(&d, 0xB0B, 400_000, 0.02, 0.05);
        }
    }

    #[test]
    fn two_point_matches_documented_variance() {
        assert!((TwoPoint::new(0.95).variance() - 4.75).abs() < 1e-12);
        let d = TwoPoint::new(0.6);
        let mut rng = Rng::seed_from(17);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!(x == d.low() || x == d.high(), "{x}");
            assert!(x > 0.0);
        }
    }

    #[test]
    fn mixture_moments_via_total_variance() {
        // Exact check: mixture of Det(0) w.p. .988 and Exp(mean 40e-3).
        let m = Mixture::of_two(
            0.988,
            Deterministic::new(0.0),
            0.012,
            Exponential::with_mean(40.0e-3),
        );
        let em = 0.012 * 40.0e-3;
        assert!((m.mean() - em).abs() < 1e-15);
        let e2 = 0.012 * 2.0 * 40.0e-3 * 40.0e-3;
        assert!((m.variance() - (e2 - em * em)).abs() < 1e-15);
    }

    #[test]
    fn mixture_weights_are_normalized() {
        let m = Mixture::of_two(2.0, Deterministic::new(1.0), 6.0, Deterministic::new(5.0));
        assert!((m.mean() - (0.25 * 1.0 + 0.75 * 5.0)).abs() < 1e-12);
    }

    #[test]
    fn mixture_fallback_skips_zero_weight_components() {
        // Regression: with weights [1.0, 0.0], cumulative-weight rounding
        // (u falling past every `u < w` test) used to land on the final,
        // zero-weight component. The fallback must pick the last component
        // with positive weight instead. `component_for(1.0)` exercises the
        // fall-through branch directly (rng draws are < 1, but subtraction
        // slack produces the same path).
        let m = Mixture::of_two(1.0, Deterministic::new(7.0), 0.0, Deterministic::new(999.0));
        let mut rng = Rng::seed_from(0x317);
        let picked = m.component_for(1.0);
        assert_eq!(picked.sample(&mut rng), 7.0, "fallback chose a zero-weight component");
        // And ordinary sampling never emits the zero-weight value.
        for _ in 0..50_000 {
            assert_eq!(m.sample(&mut rng), 7.0);
        }
        // A zero-weight component in the middle is equally unreachable.
        let m = Mixture::new(vec![
            (0.5, Arc::new(Deterministic::new(1.0)) as DynDist),
            (0.0, Arc::new(Deterministic::new(999.0)) as DynDist),
            (0.5, Arc::new(Deterministic::new(2.0)) as DynDist),
        ]);
        assert_eq!(m.component_for(1.0).sample(&mut rng), 2.0);
    }

    #[test]
    fn shifted_translates_mean_only() {
        let s = Shifted::new(3.0, Exponential::unit());
        assert!((s.mean() - 4.0).abs() < 1e-12);
        assert!((s.variance() - 1.0).abs() < 1e-12);
        let mut rng = Rng::seed_from(19);
        for _ in 0..10_000 {
            assert!(s.sample(&mut rng) >= 3.0);
        }
    }

    #[test]
    fn discrete_alias_only_emits_support() {
        // Include zero-weight entries: they must never sample.
        let d = DiscreteEmpirical::new(&[(1.0, 0.2), (2.0, 0.0), (3.0, 0.5), (4.0, 0.0), (5.0, 0.3)]);
        let mut rng = Rng::seed_from(23);
        // BTreeMap keeps the `{counts:?}` failure message in key order and
        // stays clear of the determinism lint's HashMap-traversal rule.
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..100_000 {
            let x = d.sample(&mut rng);
            *counts.entry(x as u64).or_insert(0usize) += 1;
        }
        assert!(!counts.contains_key(&2) && !counts.contains_key(&4), "{counts:?}");
        let f1 = counts[&1] as f64 / 100_000.0;
        let f3 = counts[&3] as f64 / 100_000.0;
        let f5 = counts[&5] as f64 / 100_000.0;
        assert!((f1 - 0.2).abs() < 0.01 && (f3 - 0.5).abs() < 0.01 && (f5 - 0.3).abs() < 0.01);
    }

    #[test]
    fn discrete_scaled_to_unit_mean() {
        let d = DiscreteEmpirical::new(&[(2.0, 1.0), (6.0, 1.0)]).scaled_to_unit_mean();
        assert!((d.mean() - 1.0).abs() < 1e-12);
        assert_eq!(d.values().len(), 2);
    }

    #[test]
    fn trait_object_and_reference_impls_agree() {
        let concrete = Exponential::unit();
        let boxed: Box<dyn Distribution> = Box::new(Exponential::unit());
        let arced: DynDist = Arc::new(Exponential::unit());
        let by_ref = &concrete;
        for d in [
            concrete.mean(),
            boxed.mean(),
            arced.mean(),
            by_ref.mean(),
            Distribution::mean(&by_ref),
        ] {
            assert_eq!(d, 1.0);
        }
        assert_eq!(boxed.label(), concrete.label());
        assert_eq!(by_ref.scv(), 1.0);
    }

    #[test]
    fn figure2_parameterizations_move_the_right_way() {
        // Fig 2(a): larger gamma (smaller shape) = heavier tail = more scv.
        let w_light = Weibull::unit_mean_inverse_shape(0.5).scv();
        let w_exp = Weibull::unit_mean_inverse_shape(1.0).scv();
        let w_heavy = Weibull::unit_mean_inverse_shape(4.0).scv();
        assert!(w_light < w_exp && w_exp < w_heavy, "{w_light} {w_exp} {w_heavy}");
        assert!((w_exp - 1.0).abs() < 1e-9, "gamma=1 is exponential");
        // Fig 2(b): larger beta = smaller alpha = heavier.
        let p_light = Pareto::unit_mean_inverse_scale(0.1).scv();
        let p_heavy = Pareto::unit_mean_inverse_scale(0.9).scv();
        assert!(p_light < p_heavy);
        // beta -> 1 approaches the alpha = 2 variance blow-up.
        assert!(Pareto::unit_mean_inverse_scale(0.98).alpha() < 2.05);
        // Fig 2(c): variance rises with p.
        assert!(TwoPoint::new(0.9).variance() > TwoPoint::new(0.2).variance());
    }

    #[test]
    #[should_panic(expected = "alpha > 1")]
    fn unit_mean_pareto_needs_finite_mean() {
        let _ = Pareto::unit_mean(1.0);
    }

    #[test]
    #[should_panic(expected = "scv >= 1")]
    fn h2_rejects_sub_exponential_scv() {
        let _ = HyperExponential::unit_mean_with_scv(0.5);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn discrete_rejects_all_zero_weights() {
        let _ = DiscreteEmpirical::new(&[(1.0, 0.0), (2.0, 0.0)]);
    }
}
