//! Sharded, conservatively-synchronized parallel event engine.
//!
//! [`EventQueue`](crate::event::EventQueue) executes one simulation on one
//! core; [`Runner`](crate::runner::Runner) only parallelizes *across*
//! independent runs. This module parallelizes *within* a single run: the
//! simulation is partitioned into shards (one per server group plus a
//! frontend shard, in the storage service), each owning a private event
//! queue, and shards interact only through timestamped cross-shard messages
//! carrying at least `lookahead` of delay — in the storage service the
//! cancellation/propagation delay plays that role.
//!
//! Synchronization is conservative and round-based (in the spirit of
//! YAWNS / bounded-lag windows): every round computes the global minimum
//! pending timestamp `T` and lets each shard process its events in
//! `[T, T + lookahead)` without further coordination. Any message emitted
//! by such an event arrives no earlier than `T + lookahead` — outside the
//! window — so no shard can receive a straggler into its past.
//!
//! **Determinism is the contract.** Every entry — locally scheduled or
//! received from another shard — carries the key
//! `(time, origin shard, origin sequence)`; per-shard pop order is the
//! total order on that key. Senders stamp messages from their own
//! monotonic counter, so the key multiset a shard drains is a pure
//! function of the simulation, never of thread interleaving. Output is
//! **bit-identical at any thread count**, the workspace's signature
//! invariant; `run(1)` uses a plain sequential loop and is the reference
//! path, and CI byte-diffs `--threads 1/3/8` result trees.
//!
//! The `*_keyed` scheduling variants extend the same argument to *shard
//! placement*: a simulation whose shards host several logical actors can
//! stamp every entry with the actor's logical origin and a counter the
//! actor owns, making the merge keys — hence the pop order — a pure
//! function of the logical simulation rather than of which engine shard
//! each actor landed on. The sharded storage service uses this to keep its
//! output byte-identical at any frontend-shard count.
//!
//! Worker threads are leased from the process-wide
//! [`thread budget`](crate::runner::lease_threads), so engine shards
//! compose with `Runner` task fan-out without oversubscribing.

use crate::heap::Heap4;
use crate::runner::lease_threads;
use crate::time::SimTime;
use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;

pub mod check;

/// `f64` bit pattern of positive infinity: the "no pending events" sentinel
/// in the round-minimum slots. For non-negative floats the `u64` bit
/// patterns order identically to the values, so `fetch_min` on bits is a
/// min over times.
const INF_BITS: u64 = 0x7FF0_0000_0000_0000;

struct Entry<E> {
    time: SimTime,
    origin: u32,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.origin == other.origin && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed for the max-heap: earliest time first, then the stable
        // (origin shard, origin sequence) tie-break. The key is assigned at
        // *send/schedule* time by the originator, so the order is a pure
        // function of the simulation, independent of delivery interleaving.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.origin.cmp(&self.origin))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A cross-shard message in flight: an [`Entry`] plus its destination.
struct Wire<E> {
    to: u32,
    time: SimTime,
    origin: u32,
    seq: u64,
    event: E,
}

/// A per-shard future-event list ordered by `(time, origin, seq)`.
///
/// Like [`EventQueue`](crate::event::EventQueue) but with the origin shard
/// in the key, so entries merged in from other shards land in a
/// deterministic position among simultaneous local events. Local pushes
/// and outgoing sends draw from one per-shard sequence counter.
pub struct ShardQueue<E> {
    heap: Heap4<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    shard: u32,
}

impl<E> ShardQueue<E> {
    /// Creates an empty queue for shard `shard` with the clock at zero.
    pub fn new(shard: u32) -> Self {
        Self::with_capacity(shard, 0)
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(shard: u32, cap: usize) -> Self {
        ShardQueue {
            heap: Heap4::with_capacity(cap),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            shard,
        }
    }

    /// The shard id this queue belongs to.
    #[inline]
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The time of the most recently popped event (the shard's clock).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events popped so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedules a local event at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` precedes the shard clock.
    pub fn push(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let seq = self.take_seq();
        self.heap.push(Entry {
            time: at,
            origin: self.shard,
            seq,
            event,
        });
    }

    /// Schedules a local event at `now() + delay`.
    pub fn push_after(&mut self, delay: SimTime, event: E) {
        let at = self.now + delay;
        self.push(at, event);
    }

    /// Schedules a local event under an explicit `(origin, seq)` merge key
    /// instead of this shard's id and counter.
    ///
    /// This is the primitive behind *placement-invariant* simulations: a
    /// shard hosting several logical actors (e.g. frontend lanes) stamps
    /// each actor's events with the actor's own logical origin and a
    /// counter the actor maintains, so the merge order — and therefore the
    /// whole simulation — is identical whether the actors share one engine
    /// shard or are spread across many. Callers own key uniqueness: a
    /// simulation must not mix keyed and unkeyed scheduling under
    /// colliding origin ids.
    ///
    /// # Panics
    /// Panics if `at` precedes the shard clock.
    pub fn push_keyed(&mut self, at: SimTime, origin: u32, seq: u64, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        self.heap.push(Entry {
            time: at,
            origin,
            seq,
            event,
        });
    }

    /// Claims the next sequence number (shared between local pushes and
    /// outgoing cross-shard sends, so the merge key stays totally ordered
    /// per origin).
    #[inline]
    fn take_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Merges an incoming cross-shard entry, keeping the sender's key.
    fn insert_wire(&mut self, w: Wire<E>) {
        debug_assert_eq!(w.to, self.shard);
        assert!(
            w.time >= self.now,
            "cross-shard message into the past: at={} now={}",
            w.time,
            self.now
        );
        self.heap.push(Entry {
            time: w.time,
            origin: w.origin,
            seq: w.seq,
            event: w.event,
        });
    }

    /// Removes and returns the earliest entry by `(time, origin, seq)`,
    /// advancing the shard clock. `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.pop_entry()?;
        Some((entry.time, entry.event))
    }

    /// [`ShardQueue::pop`] keeping the full `(time, origin, seq)` merge
    /// key — the schedule-exploration checker ([`check`]) traces these
    /// keys to prove pop order is schedule-independent.
    fn pop_entry(&mut self) -> Option<Entry<E>> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "heap returned a past event");
        self.now = entry.time;
        self.popped += 1;
        Some(entry)
    }

    /// Timestamp of the next entry without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

impl<E> std::fmt::Debug for ShardQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardQueue")
            .field("shard", &self.shard)
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.popped)
            .finish()
    }
}

/// Per-shard simulation logic: a state machine fed timestamped events.
pub trait ShardLogic: Send {
    /// The event type exchanged within and between shards.
    type Event: Send;

    /// Handles one event at simulated time `now`. Schedule follow-ups on
    /// this shard or send cross-shard messages through `ctx`.
    fn handle(&mut self, now: SimTime, event: Self::Event, ctx: &mut ShardCtx<'_, Self::Event>);
}

/// The scheduling interface handed to [`ShardLogic::handle`].
pub struct ShardCtx<'a, E> {
    now: SimTime,
    shard: u32,
    lookahead: SimTime,
    queue: &'a mut ShardQueue<E>,
    outbox: &'a mut Vec<Wire<E>>,
}

impl<E> ShardCtx<'_, E> {
    /// The current simulated time (the handled event's timestamp).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This shard's id.
    #[inline]
    pub fn shard(&self) -> usize {
        self.shard as usize
    }

    /// The engine's lookahead window.
    #[inline]
    pub fn lookahead(&self) -> SimTime {
        self.lookahead
    }

    /// Schedules a local event at absolute time `at` (≥ `now`).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.queue.push(at, event);
    }

    /// Schedules a local event `delay` after `now`.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Sends `event` to shard `to`, arriving at `now + delay`.
    ///
    /// # Panics
    /// Panics if `delay` is below the engine lookahead (that would let a
    /// message land inside the current synchronization window and break
    /// the conservative-parallelism guarantee) or if `to` is this shard
    /// (use [`ShardCtx::schedule_after`], which has no lookahead floor).
    pub fn send(&mut self, to: usize, delay: SimTime, event: E) {
        assert!(
            delay >= self.lookahead,
            "cross-shard delay {delay} below lookahead {}",
            self.lookahead
        );
        assert!(
            to as u32 != self.shard,
            "shard {to} sending to itself; use schedule_after"
        );
        let seq = self.queue.take_seq();
        self.outbox.push(Wire {
            to: to as u32,
            time: self.now + delay,
            origin: self.shard,
            seq,
            event,
        });
    }

    /// Schedules a local event at absolute time `at` (≥ `now`) under an
    /// explicit `(origin, seq)` merge key. See
    /// [`ShardQueue::push_keyed`] for the placement-invariance contract.
    pub fn schedule_at_keyed(&mut self, at: SimTime, origin: u32, seq: u64, event: E) {
        self.queue.push_keyed(at, origin, seq, event);
    }

    /// Sends `event` to shard `to` under an explicit `(origin, seq)` merge
    /// key, arriving at `now + delay`.
    ///
    /// Together with [`ShardCtx::schedule_at_keyed`] this lets a logical
    /// actor deliver a message with the *same* key whether the destination
    /// actor happens to be co-located (keyed local push) or remote (keyed
    /// wire) — the destination's merge order cannot tell the difference.
    /// Because co-location is a placement accident, callers must keep
    /// `delay ≥ lookahead` even for local keyed delivery, or a different
    /// placement of the same simulation would panic here.
    ///
    /// # Panics
    /// Panics if `delay` is below the engine lookahead or `to` is this
    /// shard (use [`ShardCtx::schedule_at_keyed`] with the same key).
    pub fn send_keyed(&mut self, to: usize, delay: SimTime, origin: u32, seq: u64, event: E) {
        assert!(
            delay >= self.lookahead,
            "cross-shard delay {delay} below lookahead {}",
            self.lookahead
        );
        assert!(
            to as u32 != self.shard,
            "shard {to} sending to itself; use schedule_at_keyed"
        );
        self.outbox.push(Wire {
            to: to as u32,
            time: self.now + delay,
            origin,
            seq,
            event,
        });
    }
}

/// Counters describing one engine run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EngineStats {
    /// Total events handled across all shards.
    pub events: u64,
    /// Synchronization rounds executed (identical at every thread count).
    pub rounds: u64,
    /// Worker threads actually used (after the process-wide budget lease).
    pub threads: usize,
    /// The latest shard clock when the engine drained.
    pub end_time: SimTime,
}

struct Cell<S: ShardLogic> {
    id: u32,
    state: S,
    queue: ShardQueue<S::Event>,
}

/// Runs `cell`'s events with timestamps strictly below `bound`, appending
/// cross-shard sends to `outbox`. Returns the number of events handled.
fn run_window<S: ShardLogic>(
    cell: &mut Cell<S>,
    bound: SimTime,
    lookahead: SimTime,
    outbox: &mut Vec<Wire<S::Event>>,
) -> u64 {
    let mut handled = 0;
    while cell.queue.peek_time().is_some_and(|t| t < bound) {
        let (now, event) = cell.queue.pop().expect("peeked entry vanished");
        let mut ctx = ShardCtx {
            now,
            shard: cell.id,
            lookahead,
            queue: &mut cell.queue,
            outbox,
        };
        cell.state.handle(now, event, &mut ctx);
        handled += 1;
    }
    handled
}

/// A sense-reversing barrier that spins briefly then yields — cheap at the
/// 2-barriers-per-round rate this engine runs at, and well-behaved when the
/// process-wide budget oversubscribes physical cores.
struct SpinBarrier {
    total: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(total: usize) -> Self {
        SpinBarrier {
            total,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(generation.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                spins = spins.wrapping_add(1);
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// A sharded discrete-event engine with conservative round-based
/// synchronization. See the module docs for the protocol and the
/// determinism argument.
pub struct ShardEngine<S: ShardLogic> {
    cells: Vec<Cell<S>>,
    lookahead: SimTime,
}

impl<S: ShardLogic> ShardEngine<S> {
    /// Builds an engine with one shard per element of `states`.
    ///
    /// `lookahead` must be positive and finite: every cross-shard message
    /// must carry at least this much delay, and it is the width of the
    /// synchronization window (larger lookahead ⇒ fewer, fatter rounds).
    ///
    /// # Panics
    /// Panics if `states` is empty or `lookahead` is not positive/finite.
    pub fn new(states: Vec<S>, lookahead: SimTime) -> Self {
        assert!(!states.is_empty(), "engine needs at least one shard");
        assert!(
            lookahead > SimTime::ZERO && lookahead.is_finite(),
            "lookahead must be positive and finite, got {lookahead}"
        );
        assert!(states.len() <= u32::MAX as usize, "too many shards");
        let cells = states
            .into_iter()
            .enumerate()
            .map(|(i, state)| Cell {
                id: i as u32,
                state,
                queue: ShardQueue::new(i as u32),
            })
            .collect();
        ShardEngine { cells, lookahead }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.cells.len()
    }

    /// The lookahead window.
    pub fn lookahead(&self) -> SimTime {
        self.lookahead
    }

    /// Pre-allocates `cap` heap slots on shard `shard`'s queue.
    pub fn reserve(&mut self, shard: usize, cap: usize) {
        self.cells[shard].queue.heap.reserve(cap);
    }

    /// Seeds an initial event on `shard` at absolute time `at`. Only valid
    /// before [`ShardEngine::run`].
    pub fn schedule(&mut self, shard: usize, at: SimTime, event: S::Event) {
        self.cells[shard].queue.push(at, event);
    }

    /// Seeds an initial event on `shard` under an explicit `(origin, seq)`
    /// merge key (see [`ShardQueue::push_keyed`]). Only valid before
    /// [`ShardEngine::run`].
    pub fn schedule_keyed(
        &mut self,
        shard: usize,
        at: SimTime,
        origin: u32,
        seq: u64,
        event: S::Event,
    ) {
        self.cells[shard].queue.push_keyed(at, origin, seq, event);
    }

    /// Shared access to a shard's state (e.g. for inspection in tests).
    pub fn state(&self, shard: usize) -> &S {
        &self.cells[shard].state
    }

    /// Consumes the engine, returning the shard states in shard order.
    pub fn into_states(self) -> Vec<S> {
        self.cells.into_iter().map(|c| c.state).collect()
    }

    /// Drains all events. `threads` is the *desired* worker count; the
    /// actual count is clamped by the shard count and leased from the
    /// process-wide budget (see [`crate::runner::lease_threads`]), and is
    /// reported in [`EngineStats::threads`]. Results are bit-identical
    /// regardless of the value used.
    pub fn run(&mut self, threads: usize) -> EngineStats {
        let want = threads.clamp(1, self.cells.len());
        let lease = lease_threads(want);
        let workers = lease.threads().min(self.cells.len());
        self.run_with(workers)
    }

    /// Like [`ShardEngine::run`] but with exactly `workers` engine workers
    /// (clamped to the shard count), bypassing the process-wide thread
    /// budget. For tests and benchmarks that must exercise a specific
    /// worker count regardless of the machine; simulations should call
    /// [`ShardEngine::run`].
    pub fn run_with(&mut self, workers: usize) -> EngineStats {
        let workers = workers.clamp(1, self.cells.len());
        let (events, rounds) = if workers <= 1 {
            self.run_serial()
        } else {
            self.run_parallel(workers)
        };
        let end_time = self
            .cells
            .iter()
            .map(|c| c.queue.now())
            .max()
            .unwrap_or(SimTime::ZERO);
        EngineStats {
            events,
            rounds,
            threads: workers,
            end_time,
        }
    }

    /// The sequential reference path: same rounds, same windows, one thread.
    fn run_serial(&mut self) -> (u64, u64) {
        let lookahead = self.lookahead;
        let mut outbox: Vec<Wire<S::Event>> = Vec::new();
        let mut events = 0u64;
        let mut rounds = 0u64;
        while let Some(t_min) = self.cells.iter().filter_map(|c| c.queue.peek_time()).min() {
            let bound = t_min + lookahead;
            rounds += 1;
            for cell in &mut self.cells {
                events += run_window(cell, bound, lookahead, &mut outbox);
            }
            for wire in outbox.drain(..) {
                self.cells[wire.to as usize].queue.insert_wire(wire);
            }
        }
        (events, rounds)
    }

    fn run_parallel(&mut self, workers: usize) -> (u64, u64) {
        let lookahead = self.lookahead;
        let shard_count = self.cells.len();
        // Shards are dealt round-robin so a hot low-numbered shard (the
        // service frontend is shard 0) lands alone on a worker when
        // possible; local index of shard `s` on worker `s % workers` is
        // `s / workers`.
        let mut parts: Vec<Vec<Cell<S>>> = (0..workers).map(|_| Vec::new()).collect();
        for cell in std::mem::take(&mut self.cells) {
            parts[cell.id as usize % workers].push(cell);
        }
        let mut senders = Vec::with_capacity(workers);
        let mut receivers = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<Wire<S::Event>>();
            senders.push(tx);
            receivers.push(rx);
        }
        let barrier = SpinBarrier::new(workers);
        // Ping-pong round-minimum slots indexed by round parity: while one
        // parity is being min-reduced for the current round, the other is
        // reset for the next, so no worker can clobber a value a straggler
        // still needs.
        let round_min = [AtomicU64::new(INF_BITS), AtomicU64::new(INF_BITS)];
        let mut finished: Vec<(Vec<Cell<S>>, u64, u64)> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let barrier = &barrier;
            let round_min = &round_min;
            let handles: Vec<_> = parts
                .into_iter()
                .zip(receivers)
                .map(|(mut cells, rx)| {
                    let senders = senders.clone();
                    scope.spawn(move || {
                        let mut outbox: Vec<Wire<S::Event>> = Vec::new();
                        let mut events = 0u64;
                        let mut rounds = 0u64;
                        let mut parity = 0usize;
                        loop {
                            // Phase 1: drain the inbox (messages routed at
                            // the end of the previous round), then reduce
                            // this worker's minimum pending time.
                            for wire in rx.try_iter() {
                                let local = wire.to as usize / workers;
                                cells[local].queue.insert_wire(wire);
                            }
                            let local_min = cells
                                .iter()
                                .filter_map(|c| c.queue.peek_time())
                                .min()
                                .map_or(INF_BITS, |t| t.as_secs().to_bits());
                            round_min[parity].fetch_min(local_min, Ordering::SeqCst);
                            barrier.wait();
                            let global_min = round_min[parity].load(Ordering::SeqCst);
                            if global_min == INF_BITS {
                                // Every queue is empty and (because sends
                                // precede the previous barrier) no message
                                // is in flight: drained.
                                break;
                            }
                            // Phase 2: everyone agrees on the window; run
                            // it, route sends, and reset the other parity
                            // slot for the next round.
                            let bound =
                                SimTime::from_secs(f64::from_bits(global_min)) + lookahead;
                            rounds += 1;
                            for cell in &mut cells {
                                events += run_window(cell, bound, lookahead, &mut outbox);
                            }
                            for wire in outbox.drain(..) {
                                let dest = wire.to as usize % workers;
                                senders[dest].send(wire).expect("engine worker hung up");
                            }
                            round_min[1 - parity].store(INF_BITS, Ordering::SeqCst);
                            barrier.wait();
                            parity = 1 - parity;
                        }
                        (cells, events, rounds)
                    })
                })
                .collect();
            drop(senders);
            for h in handles {
                finished.push(h.join().expect("engine worker panicked"));
            }
        });
        let mut events = 0u64;
        let mut rounds = 0u64;
        let mut cells: Vec<Cell<S>> = Vec::with_capacity(shard_count);
        for (part, ev, rd) in finished {
            events += ev;
            rounds = rounds.max(rd);
            cells.extend(part);
        }
        cells.sort_unstable_by_key(|c| c.id);
        self.cells = cells;
        (events, rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// A shard that logs everything it handles and forwards according to a
    /// tiny scripted rule, exercising local scheduling, ties, and sends.
    struct Echo {
        log: Vec<(u64, u32)>, // (time in microseconds, payload)
        peers: usize,
    }

    #[derive(Clone, Copy)]
    struct Msg {
        payload: u32,
        hops: u32,
    }

    impl ShardLogic for Echo {
        type Event = Msg;
        fn handle(&mut self, now: SimTime, m: Msg, ctx: &mut ShardCtx<'_, Msg>) {
            self.log
                .push(((now.as_secs() * 1e6).round() as u64, m.payload));
            if m.hops == 0 {
                return;
            }
            let next = Msg {
                payload: m.payload.wrapping_mul(31).wrapping_add(ctx.shard() as u32),
                hops: m.hops - 1,
            };
            let to = (ctx.shard() + 1 + m.payload as usize) % self.peers;
            if to == ctx.shard() {
                ctx.schedule_after(SimTime::from_micros(7.0), next);
            } else {
                // Exactly the lookahead: lands on the horizon boundary.
                ctx.send(to, ctx.lookahead(), next);
            }
        }
    }

    fn echo_run(shards: usize, threads: usize, seeds: u64) -> Vec<Vec<(u64, u32)>> {
        let states = (0..shards)
            .map(|_| Echo {
                log: Vec::new(),
                peers: shards,
            })
            .collect();
        let mut engine = ShardEngine::new(states, SimTime::from_micros(50.0));
        let mut rng = Rng::seed_from(seeds);
        for i in 0..64 {
            let shard = rng.index(shards);
            let at = SimTime::from_micros(rng.index(40) as f64);
            engine.schedule(
                shard,
                at,
                Msg {
                    payload: i,
                    hops: 5,
                },
            );
        }
        engine.run_with(threads);
        engine.into_states().into_iter().map(|s| s.log).collect()
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        for shards in [1, 2, 3, 7] {
            let reference = echo_run(shards, 1, 42);
            for threads in [2, 3, 8] {
                assert_eq!(reference, echo_run(shards, threads, 42), "shards={shards}");
            }
        }
    }

    #[test]
    fn stats_identical_at_any_thread_count() {
        let build = || {
            let states = (0..5)
                .map(|_| Echo {
                    log: Vec::new(),
                    peers: 5,
                })
                .collect();
            let mut engine = ShardEngine::new(states, SimTime::from_micros(50.0));
            for i in 0..10u32 {
                engine.schedule(
                    (i % 5) as usize,
                    SimTime::from_micros(i as f64),
                    Msg {
                        payload: i,
                        hops: 8,
                    },
                );
            }
            engine
        };
        let a = build().run_with(1);
        let b = build().run_with(4);
        assert_eq!(a.events, b.events);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.end_time, b.end_time);
        assert!(a.events > 0 && a.rounds > 0);
    }

    #[test]
    fn single_shard_degenerates_to_event_queue_order() {
        // One shard, no sends: pop order must match EventQueue exactly,
        // including FIFO ties.
        struct Sink {
            log: Vec<u32>,
        }
        impl ShardLogic for Sink {
            type Event = u32;
            fn handle(&mut self, _now: SimTime, ev: u32, _ctx: &mut ShardCtx<'_, u32>) {
                self.log.push(ev);
            }
        }
        let mut rng = Rng::seed_from(7);
        let schedule: Vec<(SimTime, u32)> = (0..500)
            .map(|i| (SimTime::from_micros(rng.index(50) as f64), i))
            .collect();
        let mut q = crate::event::EventQueue::new();
        let mut engine = ShardEngine::new(vec![Sink { log: Vec::new() }], SimTime::from_secs(1.0));
        for &(at, v) in &schedule {
            q.push(at, v);
            engine.schedule(0, at, v);
        }
        let expected: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        engine.run(1);
        assert_eq!(engine.state(0).log, expected);
    }

    #[test]
    #[should_panic(expected = "below lookahead")]
    fn short_cross_shard_delay_panics() {
        struct Bad;
        impl ShardLogic for Bad {
            type Event = ();
            fn handle(&mut self, _now: SimTime, _ev: (), ctx: &mut ShardCtx<'_, ()>) {
                ctx.send(1, SimTime::from_micros(1.0), ());
            }
        }
        let mut engine = ShardEngine::new(vec![Bad, Bad], SimTime::from_micros(50.0));
        engine.schedule(0, SimTime::ZERO, ());
        engine.run(1);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_engine_panics() {
        struct Never;
        impl ShardLogic for Never {
            type Event = ();
            fn handle(&mut self, _: SimTime, _: (), _: &mut ShardCtx<'_, ()>) {}
        }
        let _ = ShardEngine::<Never>::new(Vec::new(), SimTime::from_secs(1.0));
    }
}
