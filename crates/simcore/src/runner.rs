//! Parallel execution of independent simulation tasks.
//!
//! Every figure in the paper is assembled from hundreds of *independent*
//! runs (load points × replication factors × seed replications), so the
//! workspace's scaling story is embarrassingly parallel — provided the
//! randomness of each task is derived from its *index*, never from
//! execution order. This module supplies the execution half of that
//! contract; [`crate::rng::Rng::fork`] supplies the seeding half.
//!
//! Design:
//!
//! * [`Runner`] — a thread-count config plus `run`/`map` combinators built
//!   on `std::thread::scope` (no dependencies, no unsafe). Work is pulled
//!   from a chunked atomic queue so uneven task costs balance, and results
//!   are reassembled **in task order**, so output is deterministic.
//! * The **bit-identical contract**: for any closure whose output depends
//!   only on its task index (and not on shared mutable state), `run` at 1,
//!   2, or 64 threads returns byte-identical results. The workspace's
//!   property tests pin this for the threshold search and the load sweeps.
//! * A process-wide default thread count, settable once from a CLI flag
//!   (`repro --threads N`) or the `LLR_THREADS` environment variable, read
//!   by [`Runner::global`]. The default is the machine's available
//!   parallelism.
//!
//! Nested use is permitted (a parallel family sweep whose per-point
//! threshold search is itself parallel): scoped threads compose without
//! deadlock, and a process-wide [`ThreadBudget`] keeps the composition from
//! oversubscribing — every spawner ([`Runner::run`], [`Runner::pair`], the
//! sharded engine in [`crate::shard`]) leases worker slots from the same
//! budget, so an inner spawner inside a saturated outer one simply runs
//! serially instead of multiplying thread counts.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default thread count. 0 means "not yet resolved".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default thread count used by [`Runner::global`].
///
/// Call this once at startup (e.g. from a `--threads N` flag). Passing 0
/// resets to the automatic default (env override, then available
/// parallelism).
pub fn set_global_threads(threads: usize) {
    GLOBAL_THREADS.store(threads, Ordering::Relaxed);
}

/// Resolves the process-wide default thread count: an explicit
/// [`set_global_threads`] wins, then the `LLR_THREADS` environment
/// variable, then [`std::thread::available_parallelism`]. The resolved
/// value is cached, so steady-state calls are one atomic load.
pub fn global_threads() -> usize {
    let set = GLOBAL_THREADS.load(Ordering::Relaxed);
    if set > 0 {
        return set;
    }
    let resolved = std::env::var("LLR_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    // Cache for next time unless a concurrent set_global_threads won.
    let _ = GLOBAL_THREADS.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed);
    resolved
}

/// A cap on the number of concurrently running worker threads, shared by
/// every spawner in the process.
///
/// Spawners call [`ThreadBudget::lease`] with the parallelism they *want*;
/// the budget grants what fits (always at least 1, i.e. the caller's own
/// thread) and reclaims the slots when the returned [`ThreadLease`] drops.
/// Accounting is conservative: the invariant is
/// `in_use ≤ capacity − 1` (the root thread holds the implicit last slot),
/// so engine shards nested inside `Runner` tasks — or vice versa — never
/// multiply into `shards × tasks` threads.
#[derive(Debug)]
pub struct ThreadBudget {
    /// 0 means "track [`global_threads`]"; otherwise a fixed capacity.
    capacity: usize,
    /// Extra worker slots currently leased out (beyond each lessee's own
    /// thread).
    in_use: AtomicUsize,
}

impl ThreadBudget {
    /// A budget with a fixed capacity (`>= 1`). Mainly for tests; the
    /// process-wide budget from [`thread_budget`] tracks [`global_threads`].
    pub const fn new(capacity: usize) -> Self {
        ThreadBudget {
            capacity,
            in_use: AtomicUsize::new(0),
        }
    }

    /// The current capacity.
    pub fn capacity(&self) -> usize {
        if self.capacity == 0 {
            global_threads()
        } else {
            self.capacity.max(1)
        }
    }

    /// Extra worker slots currently leased (0 when nothing parallel runs).
    pub fn in_use(&self) -> usize {
        self.in_use.load(Ordering::SeqCst)
    }

    /// Leases up to `want` worker slots. The grant — [`ThreadLease::threads`]
    /// — counts the caller's thread, is at least 1 and at most `want`, and
    /// shrinks to whatever the budget has left when other leases are
    /// outstanding (1 ⇒ run serially).
    pub fn lease(&self, want: usize) -> ThreadLease<'_> {
        let want_extra = want.max(1) - 1;
        let capacity = self.capacity();
        let mut granted = 0;
        if want_extra > 0 && capacity > 1 {
            let mut current = self.in_use.load(Ordering::SeqCst);
            loop {
                let available = (capacity - 1).saturating_sub(current);
                let take = want_extra.min(available);
                if take == 0 {
                    break;
                }
                match self.in_use.compare_exchange(
                    current,
                    current + take,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => {
                        granted = take;
                        break;
                    }
                    Err(seen) => current = seen,
                }
            }
        }
        ThreadLease {
            budget: self,
            extra: granted,
        }
    }
}

/// A grant of worker slots from a [`ThreadBudget`]; slots return to the
/// budget on drop.
#[derive(Debug)]
pub struct ThreadLease<'a> {
    budget: &'a ThreadBudget,
    extra: usize,
}

impl ThreadLease<'_> {
    /// The number of concurrent worker threads this lease permits,
    /// including the caller's own thread. Always ≥ 1.
    pub fn threads(&self) -> usize {
        self.extra + 1
    }
}

impl Drop for ThreadLease<'_> {
    fn drop(&mut self) {
        if self.extra > 0 {
            self.budget.in_use.fetch_sub(self.extra, Ordering::SeqCst);
        }
    }
}

/// The process-wide budget (capacity = [`global_threads`], i.e. `repro
/// --threads` / `LLR_THREADS` / available parallelism).
pub fn thread_budget() -> &'static ThreadBudget {
    static GLOBAL_BUDGET: ThreadBudget = ThreadBudget::new(0);
    &GLOBAL_BUDGET
}

/// Shorthand for `thread_budget().lease(want)`.
pub fn lease_threads(want: usize) -> ThreadLease<'static> {
    thread_budget().lease(want)
}

/// A parallel executor for independent, index-addressed tasks.
#[derive(Clone, Debug)]
pub struct Runner {
    threads: usize,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::global()
    }
}

impl Runner {
    /// A runner with an explicit thread count (≥ 1).
    pub fn new(threads: usize) -> Self {
        Runner {
            threads: threads.max(1),
        }
    }

    /// A single-threaded runner: tasks run inline on the caller's thread.
    pub fn serial() -> Self {
        Runner { threads: 1 }
    }

    /// A runner using the process-wide default (see [`global_threads`]).
    pub fn global() -> Self {
        Runner::new(global_threads())
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `n` independent tasks, returning their results **in task
    /// order** (index 0 first) regardless of completion order or thread
    /// count.
    ///
    /// `f` must derive everything it needs from its index argument; the
    /// bit-identical-at-any-thread-count guarantee holds exactly when it
    /// does.
    ///
    /// The configured thread count is a *desired* parallelism: the actual
    /// worker count is leased from the process-wide [`ThreadBudget`], so
    /// nested spawners degrade to serial execution instead of
    /// oversubscribing. Results are unaffected (the bit-identical
    /// contract).
    pub fn run<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let lease = lease_threads(self.threads.min(n));
        let threads = lease.threads();
        if threads <= 1 {
            return (0..n).map(f).collect();
        }
        // Chunked work queue: workers claim `chunk` consecutive indices at
        // a time, balancing uneven task costs without per-task contention.
        let chunk = (n / (threads * 8)).max(1);
        let next = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out: Vec<(usize, R)> = Vec::new();
                        loop {
                            let start = next.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            for i in start..(start + chunk).min(n) {
                                out.push((i, f(i)));
                            }
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                tagged.extend(h.join().expect("runner worker panicked"));
            }
        });
        // Deterministic result ordering: reassemble by task index.
        tagged.sort_unstable_by_key(|&(i, _)| i);
        tagged.into_iter().map(|(_, r)| r).collect()
    }

    /// Maps `f` over a slice in parallel, preserving order. Convenience
    /// wrapper over [`Runner::run`].
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run(items.len(), |i| f(i, &items[i]))
    }

    /// Runs two heterogeneous tasks concurrently and returns `(a(), b())`.
    /// The tuple order is fixed by the argument order — no index
    /// bookkeeping for the ubiquitous paired-run (baseline vs. replicated)
    /// shape.
    pub fn pair<A, B>(
        &self,
        a: impl FnOnce() -> A + Send,
        b: impl FnOnce() -> B + Send,
    ) -> (A, B)
    where
        A: Send,
        B: Send,
    {
        let lease = lease_threads(self.threads.min(2));
        if lease.threads() <= 1 {
            let ra = a();
            (ra, b())
        } else {
            std::thread::scope(|scope| {
                let hb = scope.spawn(b);
                let ra = a();
                (ra, hb.join().expect("runner worker panicked"))
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn results_in_task_order() {
        for threads in [1, 2, 3, 8] {
            let r = Runner::new(threads);
            let out = r.run(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_preserves_order_and_values() {
        let items: Vec<u64> = (0..57).collect();
        let serial = Runner::serial().map(&items, |i, &x| x * 3 + i as u64);
        let parallel = Runner::new(8).map(&items, |i, &x| x * 3 + i as u64);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn bit_identical_rng_streams_at_any_thread_count() {
        // The seeding contract: per-task streams derived from the index
        // produce byte-identical output at every thread count.
        let job = |i: usize| -> Vec<u64> {
            let mut rng = Rng::seed_from(0xC0FFEE).fork(i as u64);
            (0..32).map(|_| rng.next_u64()).collect()
        };
        let base = Runner::serial().run(33, job);
        for threads in [2, 5, 8, 16] {
            assert_eq!(base, Runner::new(threads).run(33, job));
        }
    }

    #[test]
    fn uneven_task_costs_still_ordered() {
        let r = Runner::new(4);
        let out = r.run(40, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn zero_tasks_and_single_task() {
        let r = Runner::new(8);
        assert!(r.run(0, |i| i).is_empty());
        assert_eq!(r.run(1, |i| i + 1), vec![1]);
    }

    #[test]
    fn global_runner_has_positive_threads() {
        assert!(Runner::global().threads() >= 1);
        assert!(global_threads() >= 1);
    }

    #[test]
    fn budget_grants_at_most_capacity() {
        let budget = ThreadBudget::new(4);
        let lease = budget.lease(8);
        assert_eq!(lease.threads(), 4);
        assert_eq!(budget.in_use(), 3);
        drop(lease);
        assert_eq!(budget.in_use(), 0);
    }

    #[test]
    fn nested_leases_never_oversubscribe() {
        // The regression this budget exists for: an engine leasing inside
        // a saturated Runner (or vice versa) must degrade to serial, not
        // multiply thread counts.
        let budget = ThreadBudget::new(4);
        let outer = budget.lease(4);
        assert_eq!(outer.threads(), 4);
        let inner = budget.lease(8);
        assert_eq!(inner.threads(), 1, "no slots left; must run serially");
        drop(outer);
        let after = budget.lease(8);
        assert_eq!(after.threads(), 4, "slots returned on lease drop");
        // Partial availability: 2 of 3 worker slots taken => grant 1 extra.
        let budget = ThreadBudget::new(4);
        let _two = budget.lease(3);
        assert_eq!(budget.lease(8).threads(), 2);
    }

    #[test]
    fn serial_lease_is_free() {
        let budget = ThreadBudget::new(4);
        let lease = budget.lease(1);
        assert_eq!(lease.threads(), 1);
        assert_eq!(budget.in_use(), 0, "serial leases consume no slots");
    }

    #[test]
    fn capacity_one_budget_always_serial() {
        let budget = ThreadBudget::new(1);
        assert_eq!(budget.lease(64).threads(), 1);
        assert_eq!(budget.in_use(), 0);
    }

    #[test]
    fn global_budget_tracks_global_threads() {
        assert_eq!(thread_budget().capacity(), global_threads());
    }

    #[test]
    fn nested_runners_respect_the_global_budget() {
        // Runner::run leases from the process budget; an inner Runner
        // inside a task sees a reduced (possibly serial) grant but returns
        // identical results. The in-use count can never exceed
        // capacity - 1 no matter how deep the nesting.
        let cap = thread_budget().capacity();
        let outer = Runner::new(2);
        let results = outer.run(4, |i| {
            let inner = Runner::new(8);
            let inner_sum: usize = inner.run(8, |j| i * 10 + j).iter().sum();
            assert!(thread_budget().in_use() <= cap.saturating_sub(1));
            inner_sum
        });
        let expected: Vec<usize> = (0..4).map(|i| (0..8).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(results, expected);
    }
}
