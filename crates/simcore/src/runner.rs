//! Parallel execution of independent simulation tasks.
//!
//! Every figure in the paper is assembled from hundreds of *independent*
//! runs (load points × replication factors × seed replications), so the
//! workspace's scaling story is embarrassingly parallel — provided the
//! randomness of each task is derived from its *index*, never from
//! execution order. This module supplies the execution half of that
//! contract; [`crate::rng::Rng::fork`] supplies the seeding half.
//!
//! Design:
//!
//! * [`Runner`] — a thread-count config plus `run`/`map` combinators built
//!   on `std::thread::scope` (no dependencies, no unsafe). Work is pulled
//!   from a chunked atomic queue so uneven task costs balance, and results
//!   are reassembled **in task order**, so output is deterministic.
//! * The **bit-identical contract**: for any closure whose output depends
//!   only on its task index (and not on shared mutable state), `run` at 1,
//!   2, or 64 threads returns byte-identical results. The workspace's
//!   property tests pin this for the threshold search and the load sweeps.
//! * A process-wide default thread count, settable once from a CLI flag
//!   (`repro --threads N`) or the `LLR_THREADS` environment variable, read
//!   by [`Runner::global`]. The default is the machine's available
//!   parallelism.
//!
//! Nested use is permitted (a parallel family sweep whose per-point
//! threshold search is itself parallel): scoped threads compose, and the
//! worst case is transient oversubscription, never deadlock.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default thread count. 0 means "not yet resolved".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default thread count used by [`Runner::global`].
///
/// Call this once at startup (e.g. from a `--threads N` flag). Passing 0
/// resets to the automatic default (env override, then available
/// parallelism).
pub fn set_global_threads(threads: usize) {
    GLOBAL_THREADS.store(threads, Ordering::Relaxed);
}

/// Resolves the process-wide default thread count: an explicit
/// [`set_global_threads`] wins, then the `LLR_THREADS` environment
/// variable, then [`std::thread::available_parallelism`]. The resolved
/// value is cached, so steady-state calls are one atomic load.
pub fn global_threads() -> usize {
    let set = GLOBAL_THREADS.load(Ordering::Relaxed);
    if set > 0 {
        return set;
    }
    let resolved = std::env::var("LLR_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    // Cache for next time unless a concurrent set_global_threads won.
    let _ = GLOBAL_THREADS.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed);
    resolved
}

/// A parallel executor for independent, index-addressed tasks.
#[derive(Clone, Debug)]
pub struct Runner {
    threads: usize,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::global()
    }
}

impl Runner {
    /// A runner with an explicit thread count (≥ 1).
    pub fn new(threads: usize) -> Self {
        Runner {
            threads: threads.max(1),
        }
    }

    /// A single-threaded runner: tasks run inline on the caller's thread.
    pub fn serial() -> Self {
        Runner { threads: 1 }
    }

    /// A runner using the process-wide default (see [`global_threads`]).
    pub fn global() -> Self {
        Runner::new(global_threads())
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `n` independent tasks, returning their results **in task
    /// order** (index 0 first) regardless of completion order or thread
    /// count.
    ///
    /// `f` must derive everything it needs from its index argument; the
    /// bit-identical-at-any-thread-count guarantee holds exactly when it
    /// does.
    pub fn run<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let threads = self.threads.min(n);
        if threads <= 1 {
            return (0..n).map(f).collect();
        }
        // Chunked work queue: workers claim `chunk` consecutive indices at
        // a time, balancing uneven task costs without per-task contention.
        let chunk = (n / (threads * 8)).max(1);
        let next = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out: Vec<(usize, R)> = Vec::new();
                        loop {
                            let start = next.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            for i in start..(start + chunk).min(n) {
                                out.push((i, f(i)));
                            }
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                tagged.extend(h.join().expect("runner worker panicked"));
            }
        });
        // Deterministic result ordering: reassemble by task index.
        tagged.sort_unstable_by_key(|&(i, _)| i);
        tagged.into_iter().map(|(_, r)| r).collect()
    }

    /// Maps `f` over a slice in parallel, preserving order. Convenience
    /// wrapper over [`Runner::run`].
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run(items.len(), |i| f(i, &items[i]))
    }

    /// Runs two heterogeneous tasks concurrently and returns `(a(), b())`.
    /// The tuple order is fixed by the argument order — no index
    /// bookkeeping for the ubiquitous paired-run (baseline vs. replicated)
    /// shape.
    pub fn pair<A, B>(
        &self,
        a: impl FnOnce() -> A + Send,
        b: impl FnOnce() -> B + Send,
    ) -> (A, B)
    where
        A: Send,
        B: Send,
    {
        if self.threads <= 1 {
            let ra = a();
            (ra, b())
        } else {
            std::thread::scope(|scope| {
                let hb = scope.spawn(b);
                let ra = a();
                (ra, hb.join().expect("runner worker panicked"))
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn results_in_task_order() {
        for threads in [1, 2, 3, 8] {
            let r = Runner::new(threads);
            let out = r.run(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_preserves_order_and_values() {
        let items: Vec<u64> = (0..57).collect();
        let serial = Runner::serial().map(&items, |i, &x| x * 3 + i as u64);
        let parallel = Runner::new(8).map(&items, |i, &x| x * 3 + i as u64);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn bit_identical_rng_streams_at_any_thread_count() {
        // The seeding contract: per-task streams derived from the index
        // produce byte-identical output at every thread count.
        let job = |i: usize| -> Vec<u64> {
            let mut rng = Rng::seed_from(0xC0FFEE).fork(i as u64);
            (0..32).map(|_| rng.next_u64()).collect()
        };
        let base = Runner::serial().run(33, job);
        for threads in [2, 5, 8, 16] {
            assert_eq!(base, Runner::new(threads).run(33, job));
        }
    }

    #[test]
    fn uneven_task_costs_still_ordered() {
        let r = Runner::new(4);
        let out = r.run(40, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn zero_tasks_and_single_task() {
        let r = Runner::new(8);
        assert!(r.run(0, |i| i).is_empty());
        assert_eq!(r.run(1, |i| i + 1), vec![1]);
    }

    #[test]
    fn global_runner_has_positive_threads() {
        assert!(Runner::global().threads() >= 1);
        assert!(global_threads() >= 1);
    }
}
