//! The future-event list.
//!
//! [`EventQueue`] is a min-heap of `(time, sequence, event)` triples. The
//! sequence number makes simultaneous events pop in insertion order (stable
//! FIFO), which matters for correctness in the packet simulator: a packet
//! enqueued before another on the same link at the same instant must also
//! depart first, or per-flow ordering breaks and the TCP model sees phantom
//! reordering.
//!
//! The queue enforces monotonicity: scheduling an event before the last
//! popped time is a logic error and panics immediately rather than silently
//! corrupting causality.
//!
//! The backing store is the 4-ary [`Heap4`](crate::heap::Heap4): entry keys
//! `(time, seq)` are unique, so the pop sequence is identical to the old
//! `std::collections::BinaryHeap` backing — the swap is purely a constant-
//! factor win on the push+pop hot path (see `BENCH_engine.json`).

use crate::heap::Heap4;
use crate::time::SimTime;
use std::cmp::Ordering;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first, and
        // within a timestamp, lowest sequence number (FIFO) first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event future-event list with a monotonic clock.
///
/// `E` is the simulator's event type — typically a small enum.
pub struct EventQueue<E> {
    heap: Heap4<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: Heap4::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Heap4::with_capacity(cap),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events popped so far (useful for progress reporting and for
    /// bounding run length in tests).
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` precedes the current clock — that would violate
    /// causality.
    pub fn push(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` at `now() + delay`.
    pub fn push_after(&mut self, delay: SimTime, event: E) {
        let at = self.now + delay;
        self.push(at, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "heap returned a past event");
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Drops all pending events without touching the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), "c");
        q.push(SimTime::from_secs(1.0), "a");
        q.push(SimTime::from_secs(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_secs(3.0));
        assert_eq!(q.events_processed(), 3);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn push_after_uses_clock() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5.0), 0);
        q.pop();
        q.push_after(SimTime::from_secs(2.0), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7.0)));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5.0), ());
        q.pop();
        q.push(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), ());
        q.pop();
        q.push(SimTime::from_secs(9.0), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_secs(1.0));
    }
}
