//! Deterministic random numbers.
//!
//! Every experiment in the workspace must be bit-reproducible from a seed —
//! the threshold-load bisection in `queuesim` relies on *paired* runs (same
//! arrival pattern, different replication factor) to cancel sampling noise,
//! and that only works when streams are exactly replayable. We therefore
//! implement the generator ourselves rather than depending on a `rand`
//! version whose stream might change:
//!
//! * [`SplitMix64`] — seed expander (Steele, Lea, Flood 2014);
//! * [`Rng`] — xoshiro256++ 1.0 (Blackman & Vigna 2019), 256-bit state,
//!   period 2²⁵⁶−1, passes BigCrush; plus the non-uniform transforms the
//!   paper's workloads need (exponential, normal, gamma, …).
//!
//! Independent logical streams are derived with [`Rng::fork`], which seeds a
//! child from the parent through SplitMix64 — forked streams are
//! statistically independent of the parent's subsequent output.

/// SplitMix64: a tiny, fast 64-bit generator used to expand seeds.
///
/// Not suitable as a primary generator for experiments (64-bit state), but
/// ideal for turning one `u64` seed into the 256-bit xoshiro state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a seed expander from a raw seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the workspace's primary pseudo-random generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the polar normal transform.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Creates a generator whose 256-bit state is expanded from `seed` via
    /// SplitMix64. Any seed (including 0) is valid.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Rng {
            s,
            spare_normal: None,
        }
    }

    /// Derives an independent child stream. `stream` distinguishes siblings
    /// forked from the same parent state.
    pub fn fork(&mut self, stream: u64) -> Rng {
        // Mix a fresh draw with the stream id through SplitMix64 so that
        // fork(0), fork(1), ... are decorrelated even for adjacent ids.
        let mut sm = SplitMix64::new(self.next_u64() ^ stream.wrapping_mul(0xA076_1D64_78BD_642F));
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Rng {
            s,
            spare_normal: None,
        }
    }

    /// Next raw 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with full 53-bit mantissa resolution.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `(0, 1]` — safe to feed to `ln`.
    #[inline]
    pub fn f64_open(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's multiply-shift with
    /// rejection (unbiased).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "u64_below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform index in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.u64_below(n as u64) as usize
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential variate with the given rate (mean `1/rate`).
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        -self.f64_open().ln() / rate
    }

    /// Standard normal variate (Marsaglia polar method; the spare draw is
    /// cached so consecutive calls cost one transform on average).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.spare_normal = Some(v * f);
                return u * f;
            }
        }
    }

    /// Gamma variate with the given `shape` (k) and `scale` (θ), via
    /// Marsaglia–Tsang (2000) squeeze, boosted for `shape < 1`.
    pub fn gamma(&mut self, shape: f64, scale: f64) -> f64 {
        assert!(shape > 0.0 && scale > 0.0, "gamma(shape>0, scale>0)");
        if shape < 1.0 {
            // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
            let g = self.gamma(shape + 1.0, 1.0);
            let u = self.f64_open();
            return g * u.powf(1.0 / shape) * scale;
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.normal();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = self.f64_open();
            let x2 = x * x;
            if u < 1.0 - 0.0331 * x2 * x2 {
                return d * v * scale;
            }
            if u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
                return d * v * scale;
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Chooses `k` *distinct* indices from `[0, n)` by partial Fisher–Yates
    /// over a scratch vector — O(k) after O(k) setup with a map for large
    /// `n`, but since every caller in this workspace has small `k` (the
    /// replication factor, ≤ 10) we use Floyd's algorithm: O(k²) worst case
    /// with no allocation beyond the output.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn distinct_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot draw {k} distinct from {n}");
        let mut out: Vec<usize> = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.index(j + 1);
            if out.contains(&t) {
                out.push(j);
            } else {
                out.push(t);
            }
        }
        // Floyd's algorithm yields a uniform *set*; shuffle for a uniform
        // sequence so callers may treat position 0 as "primary".
        self.shuffle(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_xoshiro() {
        // xoshiro256++ with state seeded by SplitMix64(0) — self-consistency
        // vector pinned at first implementation; guards against accidental
        // stream changes, which would silently invalidate every recorded
        // experiment in EXPERIMENTS.md.
        let mut r = Rng::seed_from(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = Rng::seed_from(42);
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_decorrelated() {
        let mut root = Rng::seed_from(1);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        let a: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn u64_below_unbiased_small() {
        let mut r = Rng::seed_from(9);
        let mut counts = [0usize; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[r.u64_below(5) as usize] += 1;
        }
        for &c in &counts {
            let p = c as f64 / n as f64;
            assert!((p - 0.2).abs() < 0.01, "bucket p={p}");
        }
    }

    #[test]
    fn exponential_moments() {
        let mut r = Rng::seed_from(11);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::seed_from(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn gamma_moments() {
        let mut r = Rng::seed_from(17);
        let n = 200_000;
        for &(shape, scale) in &[(0.1, 1.0), (0.5, 2.0), (3.0, 0.5), (9.0, 1.0)] {
            let mean: f64 = (0..n).map(|_| r.gamma(shape, scale)).sum::<f64>() / n as f64;
            let expect = shape * scale;
            assert!(
                (mean - expect).abs() < 0.05 * expect.max(0.2),
                "shape={shape} mean={mean} expect={expect}"
            );
        }
    }

    #[test]
    fn distinct_indices_are_distinct_and_in_range() {
        let mut r = Rng::seed_from(23);
        for _ in 0..1000 {
            let n = 2 + r.index(20);
            let k = 1 + r.index(n.min(5));
            let picks = r.distinct_indices(n, k);
            assert_eq!(picks.len(), k);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates in {picks:?}");
            assert!(picks.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn distinct_indices_uniform_pairs() {
        // Drawing 2 of 4: each unordered pair should appear ~1/6 of the time.
        let mut r = Rng::seed_from(29);
        // BTreeMap: the loop below traverses the map, and the determinism
        // lint bans order-dependent HashMap traversal in this crate.
        let mut counts = std::collections::BTreeMap::new();
        let n = 60_000;
        for _ in 0..n {
            let mut p = r.distinct_indices(4, 2);
            p.sort_unstable();
            *counts.entry((p[0], p[1])).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 6);
        for (&pair, &c) in &counts {
            let p = c as f64 / n as f64;
            assert!((p - 1.0 / 6.0).abs() < 0.02, "pair {pair:?} p={p}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from(31);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
