//! Simulated time.
//!
//! [`SimTime`] is a thin, total-ordered wrapper around `f64` seconds. A
//! single type deliberately serves both as an *instant* (time since the start
//! of the simulation) and as a *duration* — queueing simulations constantly
//! mix the two (`depart = now + service`) and a two-type scheme adds friction
//! without catching real bugs at this scale. What the wrapper does add over a
//! bare `f64`:
//!
//! * `Eq`/`Ord` via `f64::total_cmp`, so times can key a [`BinaryHeap`]
//!   (the event queue) — NaN is rejected at construction in debug builds;
//! * unit-explicit constructors/accessors (`from_millis`, `as_micros`, …) so
//!   call sites never contain raw unit conversions;
//! * saturating-at-zero subtraction is *not* provided on purpose: a negative
//!   elapsed time in a simulator is always a logic error and should surface.
//!
//! [`BinaryHeap`]: std::collections::BinaryHeap

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point in simulated time (or a span of it), in seconds.
#[derive(Clone, Copy, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch (also the zero duration).
    pub const ZERO: SimTime = SimTime(0.0);
    /// A time later than every event a simulation will ever schedule.
    pub const MAX: SimTime = SimTime(f64::MAX);

    /// Creates a time from whole-or-fractional seconds.
    ///
    /// # Panics
    /// Debug-panics if `secs` is NaN.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(!secs.is_nan(), "SimTime cannot be NaN");
        SimTime(secs)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: f64) -> Self {
        Self::from_secs(ns * 1e-9)
    }

    /// This time expressed in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// This time expressed in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// This time expressed in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other { self } else { other }
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other { self } else { other }
    }

    /// `true` for exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// `true` if this time is a finite number (not `SimTime::MAX`-ish
    /// sentinel arithmetic overflow).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

// The four comparison traits form one canonical family rooted at
// `f64::total_cmp`: `Ord` defines the total order, `PartialOrd` and
// `PartialEq` delegate to it, and `Eq` is sound because `total_cmp` is a
// total order even over NaN and signed zeros. This is what lets `SimTime`
// key the event-queue heaps with no panic path and no IEEE partial-order
// escape hatch. Consequence worth knowing: `-0.0 != +0.0` and
// `NaN == NaN` under this order, unlike bare `f64` — fine here because
// NaN is debug-rejected at construction and all constructors produce
// `+0.0` for zero.
impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for SimTime {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other).is_eq()
    }
}

impl Eq for SimTime {}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 / rhs)
    }
}

impl Div for SimTime {
    type Output = f64;
    /// Ratio of two spans (dimensionless).
    #[inline]
    fn div(self, rhs: SimTime) -> f64 {
        self.0 / rhs.0
    }
}

impl Neg for SimTime {
    type Output = SimTime;
    #[inline]
    fn neg(self) -> SimTime {
        SimTime::from_secs(-self.0)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimTime {
    /// Human scale: picks s / ms / µs based on magnitude.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0.abs();
        if s >= 1.0 || s == 0.0 {
            write!(f, "{:.6}s", self.0)
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3}us", self.0 * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_roundtrip() {
        assert_eq!(SimTime::from_millis(1500.0).as_secs(), 1.5);
        assert_eq!(SimTime::from_micros(250.0).as_millis(), 0.25);
        assert_eq!(SimTime::from_nanos(1e9).as_secs(), 1.0);
        assert_eq!(SimTime::from_secs(2.0).as_micros(), 2e6);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(SimTime::ZERO.max(SimTime::MAX), SimTime::MAX);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1.0) + SimTime::from_millis(500.0);
        assert_eq!(t.as_secs(), 1.5);
        assert_eq!((t - SimTime::from_secs(0.5)).as_secs(), 1.0);
        assert_eq!((t * 2.0).as_secs(), 3.0);
        assert_eq!((t / 3.0).as_secs(), 0.5);
        assert_eq!(t / SimTime::from_secs(0.75), 2.0);
        let total: SimTime = [t, t, t].into_iter().sum();
        assert_eq!(total.as_secs(), 4.5);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_secs(1.25)), "1.250000s");
        assert_eq!(format!("{}", SimTime::from_millis(1.5)), "1.500ms");
        assert_eq!(format!("{}", SimTime::from_micros(12.5)), "12.500us");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    /// Pins the `total_cmp` order on the values IEEE 754 leaves unordered
    /// or ambiguous, so the event-queue merge key stays total even if a
    /// NaN or signed zero ever leaks past the debug constructors.
    #[test]
    fn total_order_pins_nan_and_signed_zero() {
        // NaN can only arise through the unchecked compound-assign path
        // (e.g. inf - inf); build one that way rather than via from_secs,
        // which debug-panics.
        let mut nan = SimTime::from_secs(f64::INFINITY);
        nan -= SimTime::from_secs(f64::INFINITY);
        assert!(nan.as_secs().is_nan());

        // NaN is *ordered*, at the extreme end matching its sign bit
        // (total_cmp): a leaked NaN drains first or last, it never wedges
        // the heap. inf - inf yields the platform's default quiet NaN,
        // whose sign differs by architecture (negative on x86), so pin
        // whichever end this one landed on.
        let inf = SimTime::from_secs(f64::INFINITY);
        let neg_inf = SimTime::from_secs(f64::NEG_INFINITY);
        if nan.as_secs().is_sign_negative() {
            assert!(nan < neg_inf);
            assert!(nan < SimTime::ZERO);
        } else {
            assert!(nan > SimTime::MAX);
            assert!(nan > inf);
        }
        assert!(inf > SimTime::MAX);
        assert!(neg_inf < SimTime::from_secs(f64::MIN));

        // The order is reflexive on NaN (Eq is honest): no panic path,
        // no `unwrap` on a `partial_cmp` None.
        assert_eq!(nan.cmp(&nan), std::cmp::Ordering::Equal);
        assert!(nan == nan);

        // Signed zeros are *distinct* and ordered: -0.0 < +0.0. All
        // constructors produce +0.0 for zero, so ZERO comparisons are
        // unaffected, but the merge key must not treat them as ties.
        let neg_zero = SimTime::from_secs(-0.0);
        assert!(neg_zero < SimTime::ZERO);
        assert!(neg_zero != SimTime::ZERO);
        assert_eq!(neg_zero.max(SimTime::ZERO), SimTime::ZERO);

        // And the familiar total order on ordinary values still holds
        // around the exotic ones.
        assert!(SimTime::from_secs(-1.0) < neg_zero);
        assert!(SimTime::ZERO < SimTime::from_secs(1.0));
    }
}
