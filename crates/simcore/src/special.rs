//! Special functions needed to normalize distribution families to unit mean.
//!
//! The paper's §2.1 sweeps (Fig 2) hold the mean of the service-time
//! distribution at 1 while varying its variance, so the Weibull and Pareto
//! families need Γ(·) to solve for their scale parameters.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~15 significant digits for `x > 0`; uses the reflection
/// formula for `x < 0.5`.
///
/// # Panics
/// Panics for non-positive integers (poles of Γ).
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    // Published Lanczos coefficients, kept digit-for-digit.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(
        !(x <= 0.0 && x.fract() == 0.0),
        "ln_gamma pole at non-positive integer {x}"
    );
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin().abs()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// The gamma function Γ(x) for moderate arguments.
pub fn gamma_fn(x: f64) -> f64 {
    if x < 0.5 {
        let pi = std::f64::consts::PI;
        pi / ((pi * x).sin() * gamma_fn(1.0 - x))
    } else {
        ln_gamma(x).exp()
    }
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x)/Γ(a)`.
///
/// Series expansion for `x < a + 1`, Lentz continued fraction otherwise
/// (Numerical Recipes §6.2). This is the CDF of a Gamma(shape `a`, scale 1)
/// variate, which the two-moment M/G/1 response approximation in `queuesim`
/// integrates.
///
/// # Panics
/// Panics if `a ≤ 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p needs a > 0");
    assert!(x >= 0.0, "gamma_p needs x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)` — the CCDF of
/// a Gamma(a, 1) variate, computed directly for accuracy deep in the tail.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q needs a > 0");
    assert!(x >= 0.0, "gamma_q needs x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Modified Lentz's method for the continued fraction representation.
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn gamma_integers_are_factorials() {
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!(
                close(gamma_fn(n as f64), fact, 1e-12),
                "Γ({n}) = {} != {fact}",
                gamma_fn(n as f64)
            );
        }
    }

    #[test]
    fn gamma_half_is_sqrt_pi() {
        assert!(close(gamma_fn(0.5), std::f64::consts::PI.sqrt(), 1e-12));
        // Γ(3/2) = √π/2.
        assert!(close(gamma_fn(1.5), std::f64::consts::PI.sqrt() / 2.0, 1e-12));
    }

    #[test]
    fn reflection_region() {
        // Γ(0.25)Γ(0.75) = π / sin(π/4) = π√2.
        let prod = gamma_fn(0.25) * gamma_fn(0.75);
        assert!(close(prod, std::f64::consts::PI * 2f64.sqrt(), 1e-10));
    }

    #[test]
    fn ln_gamma_large_argument() {
        // Stirling check at x = 100: ln Γ(100) = ln(99!).
        let ln99fact: f64 = (1..=99u32).map(|k| (k as f64).ln()).sum();
        assert!(close(ln_gamma(100.0), ln99fact, 1e-12));
    }

    #[test]
    #[should_panic(expected = "pole")]
    fn pole_panics() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn incomplete_gamma_shape_one_is_exponential() {
        // Gamma(1, 1) is Exp(1): P(1, x) = 1 - e^{-x}.
        for &x in &[0.0f64, 0.1, 1.0, 3.0, 10.0, 40.0] {
            let expect = 1.0 - (-x).exp();
            assert!(
                (gamma_p(1.0, x) - expect).abs() < 1e-12,
                "P(1,{x}) = {}",
                gamma_p(1.0, x)
            );
            assert!((gamma_q(1.0, x) - (1.0 - expect)).abs() < 1e-12);
        }
    }

    #[test]
    fn incomplete_gamma_complement() {
        for &a in &[0.3, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.01, 0.5, 1.0, 5.0, 30.0, 100.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert!((s - 1.0).abs() < 1e-10, "P+Q at a={a} x={x}: {s}");
            }
        }
    }

    #[test]
    fn incomplete_gamma_integer_shape() {
        // P(2, x) = 1 - e^{-x}(1 + x)  (Erlang-2 CDF).
        for &x in &[0.5f64, 2.0, 7.0] {
            let expect = 1.0 - (-x).exp() * (1.0 + x);
            assert!((gamma_p(2.0, x) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn incomplete_gamma_median_of_large_shape() {
        // For large a, the Gamma(a,1) median approaches a - 1/3.
        let a = 100.0;
        let med = a - 1.0 / 3.0;
        let p = gamma_p(a, med);
        assert!((p - 0.5).abs() < 0.01, "P(100, {med}) = {p}");
    }
}
