//! A 4-ary max-heap specialized for the future-event lists.
//!
//! [`EventQueue`](crate::event::EventQueue) and
//! [`ShardQueue`](crate::shard::ShardQueue) spend their time in
//! push+pop pairs over entries with a *total* order (the merge keys
//! `(time, seq)` and `(time, origin, seq)` are unique per entry). A 4-ary
//! layout halves the tree depth of the binary heap, turning roughly half of
//! the cache-missing parent/child hops per sift into sibling comparisons
//! that hit the same cache line — the classic d-ary trade (more compares
//! per level, fewer levels) that favors pop-heavy event loops.
//!
//! Correctness note for the workspace's bit-identity contract: because the
//! entry keys are totally ordered (no two entries compare `Equal`), *any*
//! correct heap pops the unique maximum at every step, so the pop sequence
//! is independent of the internal layout. Swapping the binary heap for this
//! one cannot change simulation output, only speed. A randomized test in
//! this module and the queue-level tests in `event`/`shard` check exactly
//! that against `std::collections::BinaryHeap`.

/// The arity. Children of slot `i` live at `4*i + 1 ..= 4*i + 4`; the
/// parent of slot `i > 0` is `(i - 1) / 4`.
const D: usize = 4;

/// A 4-ary max-heap: a drop-in for the subset of
/// `std::collections::BinaryHeap` the event queues use.
pub struct Heap4<T> {
    data: Vec<T>,
}

impl<T: Ord> Heap4<T> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Heap4 { data: Vec::new() }
    }

    /// Creates an empty heap with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Heap4 {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the heap holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserves capacity for at least `additional` more entries.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// The greatest entry, if any, without removing it.
    #[inline]
    pub fn peek(&self) -> Option<&T> {
        self.data.first()
    }

    /// Inserts an entry.
    pub fn push(&mut self, value: T) {
        self.data.push(value);
        self.sift_up(self.data.len() - 1);
    }

    /// Removes and returns the greatest entry, or `None` when empty.
    ///
    /// Uses Floyd's two-pass sift: the vacated root is filled by promoting
    /// the max child unconditionally down to a leaf, then the displaced
    /// last element bubbles back up from there. The element that replaces
    /// the root came from the bottom of the heap, so its final position is
    /// almost always near a leaf — the bounce saves one comparison per
    /// level on the long downward walk and pays only a short upward one.
    ///
    /// Interior levels always have the full fanout, so the child scan
    /// converts the slice to a `&[T; 4]` (letting the compiler drop the
    /// bounds checks) and picks the maximum by pairwise tournament —
    /// `max(max(c0,c1), max(c2,c3))` — whose first two comparisons are
    /// independent, instead of a serial linear scan.
    pub fn pop(&mut self) -> Option<T> {
        let last = self.data.pop()?;
        if self.data.is_empty() {
            return Some(last);
        }
        let top = std::mem::replace(&mut self.data[0], last);
        let len = self.data.len();
        let mut pos = 0usize;
        loop {
            let first_child = D * pos + 1;
            if first_child + D <= len {
                // Full fanout: fixed-size tournament over four children.
                let kids: &[T; D] = self.data[first_child..first_child + D]
                    .try_into()
                    .expect("slice of length D");
                let a = usize::from(kids[1] > kids[0]);
                let b = 2 + usize::from(kids[3] > kids[2]);
                let bi = if kids[b] > kids[a] { b } else { a };
                let best = first_child + bi;
                self.data.swap(pos, best);
                pos = best;
            } else {
                // Ragged last level: up to three children remain.
                if first_child >= len {
                    break;
                }
                let mut best = first_child;
                for c in (first_child + 1)..len {
                    if self.data[c] > self.data[best] {
                        best = c;
                    }
                }
                self.data.swap(pos, best);
                pos = best;
            }
        }
        self.sift_up(pos);
        Some(top)
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / D;
            if self.data[pos] <= self.data[parent] {
                break;
            }
            self.data.swap(pos, parent);
            pos = parent;
        }
    }
}

impl<T: Ord> Default for Heap4<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for Heap4<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heap4").field("len", &self.data.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use std::collections::BinaryHeap;

    #[test]
    fn matches_binary_heap_on_random_interleaving() {
        // Unique keys (the event queues' situation): pop order must match
        // std's BinaryHeap exactly under a random push/pop interleaving.
        let mut rng = Rng::seed_from(0xD4);
        let mut ours = Heap4::new();
        let mut std_heap = BinaryHeap::new();
        let mut next_key = 0u64;
        for _ in 0..10_000 {
            if std_heap.is_empty() || rng.index(3) > 0 {
                // Coarse time component + unique sequence tie-break.
                let key = (rng.index(64) as u64, u64::MAX - next_key);
                next_key += 1;
                ours.push(key);
                std_heap.push(key);
            } else {
                assert_eq!(ours.pop(), std_heap.pop());
            }
            assert_eq!(ours.peek(), std_heap.peek());
            assert_eq!(ours.len(), std_heap.len());
        }
        while let Some(expect) = std_heap.pop() {
            assert_eq!(ours.pop(), Some(expect));
        }
        assert!(ours.is_empty());
    }

    #[test]
    fn handles_tiny_sizes() {
        let mut h = Heap4::new();
        assert_eq!(h.pop(), None);
        h.push(1);
        assert_eq!(h.peek(), Some(&1));
        assert_eq!(h.pop(), Some(1));
        assert_eq!(h.pop(), None);
        for v in [5, 3, 9, 1, 9 - 2] {
            h.push(v);
        }
        let mut drained = Vec::new();
        while let Some(v) = h.pop() {
            drained.push(v);
        }
        assert_eq!(drained, vec![9, 7, 5, 3, 1]);
    }

    #[test]
    fn clear_and_reserve_work() {
        let mut h = Heap4::with_capacity(8);
        h.reserve(100);
        h.push(2);
        h.push(7);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.pop(), None);
    }
}
