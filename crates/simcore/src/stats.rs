//! Measurement: streaming moments, exact quantiles, and CCDF extraction.
//!
//! Every figure in the paper reports one of three things — a mean, a high
//! quantile (99th / 99.9th percentile), or a "fraction later than threshold"
//! curve (a complementary CDF on log axes). [`Welford`] provides numerically
//! stable streaming moments; [`SampleSet`] keeps the full sample for exact
//! order statistics (our experiments record at most a few million points, so
//! exactness is affordable and avoids quantile-sketch error bars right where
//! the paper's claims live — the extreme tail); [`Ccdf`] renders the
//! tail-fraction curves.

use crate::time::SimTime;

/// Numerically stable streaming mean/variance (Welford's algorithm) with
/// min/max tracking.
#[derive(Clone, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 { 0.0 } else { self.mean }
    }

    /// Population variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A full-sample collection supporting exact quantiles and tail fractions.
#[derive(Clone, Debug, Default)]
pub struct SampleSet {
    xs: Vec<f64>,
    sorted: bool,
}

impl SampleSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        SampleSet {
            xs: Vec::new(),
            sorted: true,
        }
    }

    /// Creates an empty set with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        SampleSet {
            xs: Vec::with_capacity(cap),
            sorted: true,
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        debug_assert!(!x.is_nan());
        self.xs.push(x);
        self.sorted = false;
    }

    /// Convenience for recording simulated latencies.
    #[inline]
    pub fn push_time(&mut self, t: SimTime) {
        self.push(t.as_secs());
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.xs.sort_unstable_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.xs.is_empty() {
            0.0
        } else {
            self.xs.iter().sum::<f64>() / self.xs.len() as f64
        }
    }

    /// Exact interpolated quantile, `q ∈ [0, 1]` (linear interpolation
    /// between closest ranks, the R-7 definition).
    ///
    /// # Panics
    /// Panics on an empty set or out-of-range `q`.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!(!self.xs.is_empty(), "quantile of empty sample");
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        self.ensure_sorted();
        let n = self.xs.len();
        if n == 1 {
            return self.xs[0];
        }
        let h = q * (n - 1) as f64;
        let lo = h.floor() as usize;
        let hi = (lo + 1).min(n - 1);
        let frac = h - lo as f64;
        self.xs[lo] + (self.xs[hi] - self.xs[lo]) * frac
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Fraction of observations strictly greater than `threshold` — the
    /// y-axis of the paper's "fraction later than threshold" plots.
    pub fn tail_fraction(&mut self, threshold: f64) -> f64 {
        if self.xs.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        // First index with value > threshold.
        let idx = self.xs.partition_point(|&x| x <= threshold);
        (self.xs.len() - idx) as f64 / self.xs.len() as f64
    }

    /// Merges all samples from `other`.
    pub fn merge(&mut self, other: &SampleSet) {
        self.xs.extend_from_slice(&other.xs);
        self.sorted = false;
    }

    /// Summarizes into the fixed set of statistics the paper reports.
    pub fn summary(&mut self) -> Summary {
        assert!(!self.xs.is_empty(), "summary of empty sample");
        Summary {
            count: self.xs.len(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            min: *self.sorted_slice().first().unwrap(),
            max: *self.sorted_slice().last().unwrap(),
        }
    }

    /// The sorted raw samples.
    pub fn sorted_slice(&mut self) -> &[f64] {
        self.ensure_sorted();
        &self.xs
    }

    /// Extracts a complementary CDF with `points` log-spaced thresholds
    /// between the smallest positive sample and the maximum.
    pub fn ccdf(&mut self, points: usize) -> Ccdf {
        assert!(points >= 2, "need at least 2 ccdf points");
        self.ensure_sorted();
        let lo = self
            .xs
            .iter()
            .copied()
            .find(|&x| x > 0.0)
            .unwrap_or(1e-9)
            .max(1e-12);
        let hi = self.xs.last().copied().unwrap_or(1.0).max(lo * (1.0 + 1e-9));
        let ratio = (hi / lo).powf(1.0 / (points - 1) as f64);
        let mut entries = Vec::with_capacity(points);
        let mut t = lo;
        for _ in 0..points {
            entries.push((t, self.tail_fraction(t)));
            t *= ratio;
        }
        Ccdf { entries }
    }
}

impl FromIterator<f64> for SampleSet {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = SampleSet::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

/// The statistics every experiment table reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.6} p50={:.6} p95={:.6} p99={:.6} p999={:.6} max={:.6}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.p999, self.max
        )
    }
}

/// A complementary CDF: `(threshold, fraction of samples > threshold)`
/// pairs, log-spaced — directly plottable against the paper's Fig 1(c),
/// Fig 5-13 right panels, and Fig 15.
#[derive(Clone, Debug)]
pub struct Ccdf {
    entries: Vec<(f64, f64)>,
}

impl Ccdf {
    /// The `(threshold, tail fraction)` pairs.
    pub fn entries(&self) -> &[(f64, f64)] {
        &self.entries
    }

    /// Writes the curve as two-column text (gnuplot-ready).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for &(t, frac) in &self.entries {
            out.push_str(&format!("{t:.9e} {frac:.9e}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.min(), 1.0);
        assert_eq!(w.max(), 9.0);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.5).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 3 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn quantiles_exact_on_known_data() {
        let mut s: SampleSet = (1..=100).map(|i| i as f64).collect();
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 100.0);
        assert!((s.median() - 50.5).abs() < 1e-12);
        // R-7: q(0.99) of 1..=100 is 99.01.
        assert!((s.quantile(0.99) - 99.01).abs() < 1e-9);
    }

    #[test]
    fn quantile_edge_cases() {
        // q = 0 and q = 1 are the exact extremes, bit-for-bit.
        let mut s: SampleSet = [5.0, -2.0, 11.0, 3.0].into_iter().collect();
        assert_eq!(s.quantile(0.0), -2.0);
        assert_eq!(s.quantile(1.0), 11.0);

        // A single-element sample returns that element for every q.
        let mut one: SampleSet = [42.5].into_iter().collect();
        for q in [0.0, 0.3, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 42.5);
        }

        // Interpolation exactly on an index boundary: for n = 5 the rank
        // h = q·(n−1) is integral at q = 0.25 (h = 1) and q = 0.75 (h = 3),
        // so the result must be the sorted element itself with zero
        // interpolation residue.
        let mut five: SampleSet = [10.0, 20.0, 30.0, 40.0, 50.0].into_iter().collect();
        assert_eq!(five.quantile(0.25), 20.0);
        assert_eq!(five.quantile(0.75), 40.0);
        // And just off the boundary it interpolates linearly.
        assert!((five.quantile(0.5 + 0.125) - 35.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_out_of_range_panics() {
        let mut s: SampleSet = [1.0].into_iter().collect();
        let _ = s.quantile(1.5);
    }

    #[test]
    fn tail_fraction_counts_strictly_greater() {
        let mut s: SampleSet = [1.0, 2.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.tail_fraction(0.5), 1.0);
        assert_eq!(s.tail_fraction(2.0), 0.25);
        assert_eq!(s.tail_fraction(3.0), 0.0);
    }

    #[test]
    fn ccdf_is_monotone_nonincreasing() {
        let mut rng = crate::rng::Rng::seed_from(3);
        let mut s = SampleSet::new();
        for _ in 0..10_000 {
            s.push(rng.exponential(1.0));
        }
        let c = s.ccdf(50);
        assert_eq!(c.entries().len(), 50);
        for w in c.entries().windows(2) {
            assert!(w[0].0 < w[1].0, "thresholds not increasing");
            assert!(w[0].1 >= w[1].1, "ccdf increased");
        }
    }

    #[test]
    fn summary_orders_percentiles() {
        let mut rng = crate::rng::Rng::seed_from(8);
        let mut s = SampleSet::new();
        for _ in 0..50_000 {
            s.push(rng.exponential(2.0));
        }
        let sum = s.summary();
        assert!(sum.p50 < sum.p95 && sum.p95 < sum.p99 && sum.p99 < sum.p999);
        assert!(sum.min <= sum.p50 && sum.p999 <= sum.max);
        // Exponential mean-1/2 sanity: median = ln(2)/2 ≈ 0.3466.
        assert!((sum.p50 - 0.3466).abs() < 0.02);
    }

    #[test]
    fn merge_sampleset() {
        let mut a: SampleSet = [1.0, 2.0].into_iter().collect();
        let b: SampleSet = [3.0, 4.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.quantile(1.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        let mut s = SampleSet::new();
        let _ = s.quantile(0.5);
    }
}
