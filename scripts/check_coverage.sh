#!/usr/bin/env bash
# Guard: every experiment id registered in `repro all` (ALL_IDS, as
# printed by `repro list --figures`) must be present in each results
# directory the CI byte-diff compares. Without this, an experiment that
# silently drops out of the `--out` set would pass the serial-vs-parallel
# diff gate (both trees equally missing it) without ever being
# regenerated or band-checked.
# Usage: check_coverage.sh <repro-binary> <results-dir>...
set -u
bin="${1:?usage: check_coverage.sh <repro-binary> <results-dir>...}"
shift
if [ "$#" -lt 1 ]; then
  echo "usage: check_coverage.sh <repro-binary> <results-dir>..."
  exit 2
fi
ids=$("$bin" list --figures) || {
  echo "FAIL: '$bin list --figures' did not run"
  exit 2
}
missing=0
count=0
for id in $ids; do
  count=$((count + 1))
  for dir in "$@"; do
    if [ ! -f "$dir/$id.txt" ]; then
      echo "MISSING $dir/$id.txt"
      missing=$((missing + 1))
    fi
  done
done
if [ "$missing" -ne 0 ]; then
  echo "$missing registered experiment output(s) missing from the byte-diff set"
  exit 1
fi
echo "all $count registered experiments present in: $*"
