#!/usr/bin/env bash
# Guard for the guard: check_headlines.sh must (a) pass a pristine
# results tree and (b) still *fail* one that drifted out of band. A
# grep-based gate can rot silently — a renamed note string makes every
# extraction come back empty, and a buggy band compare could wave the
# empty value through. This script is the negative test: it tampers a
# copy of the real results so the elastic switch-off lands far outside
# the +-0.06 band and requires the gate to exit 1 naming the figure.
# Usage: check_headline_gate.sh <results-dir>
set -u
dir="${1:?usage: check_headline_gate.sh <results-dir>}"
here="$(cd "$(dirname "$0")" && pwd)"

# (a) The pristine tree passes.
if ! "$here/check_headlines.sh" "$dir"; then
  echo "FAIL: headline gate rejects the pristine results at '$dir'"
  exit 1
fi

# (b) A tampered copy is rejected, and the failure names the figure.
tmp=$(mktemp -d) || exit 2
trap 'rm -rf "$tmp"' EXIT
cp -r "$dir/." "$tmp/"
if [ ! -f "$tmp/fig-service-elastic.txt" ]; then
  echo "FAIL: '$dir' has no fig-service-elastic.txt to tamper"
  exit 1
fi
sed -i 's/planner switch-off load (per live server): [0-9.]*/planner switch-off load (per live server): 0.90000/' \
  "$tmp/fig-service-elastic.txt"
if ! grep -q 'planner switch-off load (per live server): 0.90000' "$tmp/fig-service-elastic.txt"; then
  echo "FAIL: tamper did not take — note string drifted from the sed pattern"
  exit 1
fi

out=$("$here/check_headlines.sh" "$tmp")
status=$?
if [ "$status" -ne 1 ]; then
  echo "FAIL: headline gate exited $status on a tampered elastic switch-off (want 1)"
  echo "$out"
  exit 1
fi
if ! printf '%s\n' "$out" | grep -q "FAIL fig-service-elastic: switch-off '0.90000'"; then
  echo "FAIL: gate failure does not name the tampered fig-service-elastic value:"
  echo "$out"
  exit 1
fi
echo "headline gate verified: pristine results pass, out-of-band elastic switch-off rejected"
