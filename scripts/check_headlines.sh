#!/usr/bin/env bash
# Diff the quick-mode repro output against the headline bands recorded in
# EXPERIMENTS.md. Usage: scripts/check_headlines.sh <results-dir>
#
# Bands, not digits: quick-mode estimates carry Monte-Carlo spread and
# libm differences across platforms can perturb the last bits, so each
# check asserts the recorded band. A failure here means the models'
# behavior changed — update EXPERIMENTS.md in the same PR if intended.
set -u
dir="${1:?usage: check_headlines.sh <results-dir>}"
fails=0

# check <label> <file> <awk-condition over data rows (tab-separated, no '#')>
check() {
  local label="$1" file="$2" cond="$3"
  if [ ! -f "$dir/$file" ]; then
    echo "FAIL $label: missing $dir/$file"
    fails=$((fails + 1))
    return
  fi
  if awk -F'\t' "!/^#/ && NF > 1 { $cond } END { exit ok ? 0 : 1 }" ok=0 "$dir/$file"; then
    echo "ok   $label"
  else
    echo "FAIL $label (see $dir/$file)"
    fails=$((fails + 1))
  fi
}

# Theorem 1: all three methods near 1/3.
check "thm1: thresholds at 1/3 +-0.04" thm1.txt \
  'if ($2 > 0.293 && $2 < 0.373) ok++; else { ok = -1000000 }'

# Fig 2(a): the Weibull family climbs toward the 50% ceiling.
check "fig2a: gamma=10 threshold >= 0.45" fig2a.txt \
  'if ($1 == "10.00000" && $2 >= 0.45) ok = 1'

# Fig 2(b): heavier Pareto tails raise the threshold above 1/3 - noise.
# Axis mapping alpha = 1 + 1/beta re-verified against the figure's endpoint
# behaviour (pinned by pareto_inverse_scale_axis_endpoints in simcore);
# band tightened around the recorded quick-mode value 0.36238.
check "fig2b: beta=0.9 threshold in [0.33, 0.42]" fig2b.txt \
  'if ($1 == "0.90000" && $2 >= 0.33 && $2 <= 0.42) ok = 1'

# Fig 2(c): the deterministic worst case at p=0.
check "fig2c: p=0 threshold in [0.22, 0.31]" fig2c.txt \
  'if ($1 == "0.00000" && $2 >= 0.22 && $2 <= 0.31) ok = 1'

# Fig 3: every random-distribution threshold inside the conjectured band.
check "fig3: thresholds in [0.20, 0.50)" fig3.txt \
  'if (NF == 4) { if ($3 >= 0.20 && $4 < 0.50) ok++; else { ok = -1000000 } }'

# Fig 4: zero-overhead exponential near 1/3, full overhead collapses.
check "fig4: exponential 0 -> >0.28, 1.0 -> <0.05" fig4.txt \
  'if ($2 == "exponential" && $1 == "0.00000" && $3 > 0.28) a = 1; if ($2 == "exponential" && $1 == "1.00000" && $3 < 0.05) b = 1; ok = a && b'

# TCP handshake: savings per KB far above break-even (paper: >= 170).
check "tcp: savings/KB >= 160" tcp.txt 'ok = 1' # presence; value checked below
if [ -f "$dir/tcp.txt" ]; then
  rate=$(grep -o 'savings per KB: [0-9.]*' "$dir/tcp.txt" | grep -o '[0-9.]*$')
  if [ -n "$rate" ] && awk "BEGIN { exit !($rate >= 160) }"; then
    echo "ok   tcp: savings per KB $rate >= 160"
  else
    echo "FAIL tcp: savings per KB '$rate' < 160"
    fails=$((fails + 1))
  fi
fi

# fig-service: the live planner's switch-off load lands within +-0.05 of
# the offline section-2.1 threshold for the exponential workload.
if [ -f "$dir/fig-service.txt" ]; then
  so=$(grep -o 'planner switch-off load: [0-9.]*' "$dir/fig-service.txt" | grep -o '[0-9.]*$')
  th=$(grep -o 'offline threshold: [0-9.]*' "$dir/fig-service.txt" | grep -o '[0-9.]*$')
  if [ -n "$so" ] && [ -n "$th" ] && awk "BEGIN { d = $so - $th; if (d < 0) d = -d; exit !(d <= 0.05) }"; then
    echo "ok   fig-service: switch-off $so within 0.05 of threshold $th"
  else
    echo "FAIL fig-service: switch-off '$so' vs threshold '$th' out of band"
    fails=$((fails + 1))
  fi
else
  echo "FAIL fig-service: missing $dir/fig-service.txt"
  fails=$((fails + 1))
fi

# fig-service-scale: the sharded parallel engine reproduces the section-2.1
# switch-off at cluster scale (256+ servers, 1M+ requests) — and because the
# run executes on the parallel engine, the repro-quick byte-diff across
# --threads trees doubles as its determinism gate.
if [ -f "$dir/fig-service-scale.txt" ]; then
  so=$(grep -o 'planner switch-off load: [0-9.]*' "$dir/fig-service-scale.txt" | grep -o '[0-9.]*$')
  th=$(grep -o 'offline threshold: [0-9.]*' "$dir/fig-service-scale.txt" | grep -o '[0-9.]*$')
  done_n=$(grep -o 'completed: [0-9]*' "$dir/fig-service-scale.txt" | grep -o '[0-9]*$')
  if [ -n "$so" ] && [ -n "$th" ] && awk "BEGIN { d = $so - $th; if (d < 0) d = -d; exit !(d <= 0.05) }"; then
    echo "ok   fig-service-scale: switch-off $so within 0.05 of threshold $th"
  else
    echo "FAIL fig-service-scale: switch-off '$so' vs threshold '$th' out of band"
    fails=$((fails + 1))
  fi
  if [ -n "$done_n" ] && [ "$done_n" -ge 1000000 ]; then
    echo "ok   fig-service-scale: $done_n requests completed (>= 1M)"
  else
    echo "FAIL fig-service-scale: completed '$done_n' below 1M"
    fails=$((fails + 1))
  fi
else
  echo "FAIL fig-service-scale: missing $dir/fig-service-scale.txt"
  fails=$((fails + 1))
fi

# fig-service-frontier: the decomposed (8-lane) frontend must still land the
# section-2.1 switch-off on the offline threshold at every frontend placement
# F in {1,2,4,8}; the experiment itself asserts that all placements are
# bitwise identical, so one "all four placements" line proves the sweep ran.
if [ -f "$dir/fig-service-frontier.txt" ]; then
  rows=$(grep -c '^[0-9]' "$dir/fig-service-frontier.txt")
  bad=$(grep '^[0-9]' "$dir/fig-service-frontier.txt" \
    | awk '{ d = $3; if (d < 0) d = -d; if (d > 0.05) n++ } END { print n + 0 }')
  if [ "$rows" -eq 4 ] && [ "$bad" -eq 0 ]; then
    echo "ok   fig-service-frontier: 4 placements, every switch-off within 0.05 of threshold"
  else
    echo "FAIL fig-service-frontier: $rows rows, $bad out of band"
    fails=$((fails + 1))
  fi
  if grep -q 'bitwise identical' "$dir/fig-service-frontier.txt"; then
    echo "ok   fig-service-frontier: placement invariance asserted in-run"
  else
    echo "FAIL fig-service-frontier: missing placement-invariance note"
    fails=$((fails + 1))
  fi
else
  echo "FAIL fig-service-frontier: missing $dir/fig-service-frontier.txt"
  fails=$((fails + 1))
fi

# fig-service-est: the fully self-calibrating planner (rate, mean, and SCV
# all measured online) must land its switch-off within +-0.08 of the
# offline threshold, and within +-0.08 of the clairvoyant run it replaces.
if [ -f "$dir/fig-service-est.txt" ]; then
  est=$(grep -o 'estimated switch-off load: [0-9.]*' "$dir/fig-service-est.txt" | grep -o '[0-9.]*$')
  cl=$(grep -o 'clairvoyant switch-off load: [0-9.]*' "$dir/fig-service-est.txt" | grep -o '[0-9.]*$')
  th=$(grep -o 'offline threshold: [0-9.]*' "$dir/fig-service-est.txt" | grep -o '[0-9.]*$')
  if [ -n "$est" ] && [ -n "$cl" ] && [ -n "$th" ] && \
     awk "BEGIN { d = $est - $th; if (d < 0) d = -d; e = $est - $cl; if (e < 0) e = -e; exit !(d <= 0.08 && e <= 0.08) }"; then
    echo "ok   fig-service-est: estimated switch-off $est within 0.08 of threshold $th (clairvoyant $cl)"
  else
    echo "FAIL fig-service-est: estimated '$est' vs threshold '$th' / clairvoyant '$cl' out of band"
    fails=$((fails + 1))
  fi
else
  echo "FAIL fig-service-est: missing $dir/fig-service-est.txt"
  fails=$((fails + 1))
fi

# fig-service-tail: the two-moment planner's threshold peaks at scv = 1, so
# the self-calibrated heavy-tail switch-off must sit below the exponential
# one (and strictly: the quick-mode gap measures ~ -0.02).
if [ -f "$dir/fig-service-tail.txt" ]; then
  hv=$(grep -o 'heavy-tail switch-off load: [0-9.]*' "$dir/fig-service-tail.txt" | grep -o '[0-9.]*$')
  ex=$(grep -o 'exponential switch-off load: [0-9.]*' "$dir/fig-service-tail.txt" | grep -o '[0-9.]*$')
  if [ -n "$hv" ] && [ -n "$ex" ] && awk "BEGIN { exit !($hv < $ex) }"; then
    echo "ok   fig-service-tail: heavy-tail switch-off $hv below exponential $ex"
  else
    echo "FAIL fig-service-tail: heavy-tail '$hv' not below exponential '$ex'"
    fails=$((fails + 1))
  fi
else
  echo "FAIL fig-service-tail: missing $dir/fig-service-tail.txt"
  fails=$((fails + 1))
fi

# fig-service-skew: the global-rate planner still flips in band under a
# Zipf key mix, and hedging on the skewed ramp cuts the ramp-end p99 for a
# small fired fraction.
if [ -f "$dir/fig-service-skew.txt" ]; then
  sk=$(grep -o 'skewed switch-off load: [0-9.]*' "$dir/fig-service-skew.txt" | grep -o '[0-9.]*$')
  th=$(grep -o 'offline threshold: [0-9.]*' "$dir/fig-service-skew.txt" | grep -o '[0-9.]*$')
  ratio=$(grep -o 'ratio [0-9.]*' "$dir/fig-service-skew.txt" | grep -o '[0-9.]*$')
  fired=$(grep -o 'hedge fired fraction: [0-9.]*' "$dir/fig-service-skew.txt" | grep -o '[0-9.]*$')
  if [ -n "$sk" ] && [ -n "$th" ] && awk "BEGIN { d = $sk - $th; if (d < 0) d = -d; exit !(d <= 0.08) }"; then
    echo "ok   fig-service-skew: skewed switch-off $sk within 0.08 of threshold $th"
  else
    echo "FAIL fig-service-skew: skewed switch-off '$sk' vs threshold '$th' out of band"
    fails=$((fails + 1))
  fi
  if [ -n "$ratio" ] && [ -n "$fired" ] && \
     awk "BEGIN { exit !($ratio < 0.97 && $fired > 0.001 && $fired < 0.3) }"; then
    echo "ok   fig-service-skew: hedged/single ramp-end p99 ratio $ratio < 0.97, fired fraction $fired in (0.001, 0.3)"
  else
    echo "FAIL fig-service-skew: hedge ratio '$ratio' / fired fraction '$fired' out of band"
    fails=$((fails + 1))
  fi
else
  echo "FAIL fig-service-skew: missing $dir/fig-service-skew.txt"
  fails=$((fails + 1))
fi

# fig-service-skew-aware: the per-server planner must cut the Zipf
# hot-server peak utilization strictly below the global planner's, flatten
# the mid-ramp p99 contention hump, and keep cold pairs replicating after
# hot pairs switched off.
if [ -f "$dir/fig-service-skew-aware.txt" ]; then
  f="$dir/fig-service-skew-aware.txt"
  gp=$(grep -o 'global hot-server peak utilization: [0-9.]*' "$f" | grep -o '[0-9.]*$')
  pp=$(grep -o 'per-server hot-server peak utilization: [0-9.]*' "$f" | grep -o '[0-9.]*$')
  ratio=$(grep -o 'p99 hump ratio: [0-9.]*' "$f" | grep -o '[0-9.]*$')
  hot=$(grep -o 'hot-pair switch-off load: [0-9.]*' "$f" | grep -o '[0-9.]*$')
  cold=$(grep -o 'cold-pair switch-off load: [0-9.NaN]*' "$f" | grep -o '[0-9.NaN]*$')
  if [ -n "$gp" ] && [ -n "$pp" ] && awk "BEGIN { exit !($pp < $gp - 0.05) }"; then
    echo "ok   fig-service-skew-aware: per-server peak util $pp below global $gp - 0.05"
  else
    echo "FAIL fig-service-skew-aware: per-server peak '$pp' vs global '$gp' out of band"
    fails=$((fails + 1))
  fi
  if [ -n "$ratio" ] && awk "BEGIN { exit !($ratio < 0.9) }"; then
    echo "ok   fig-service-skew-aware: p99 hump ratio $ratio < 0.9"
  else
    echo "FAIL fig-service-skew-aware: p99 hump ratio '$ratio' not < 0.9"
    fails=$((fails + 1))
  fi
  # NaN cold switch-off = cold pairs never cross inside the ramp: the
  # maximal stagger, which passes by definition.
  if [ "$cold" = "NaN" ] || { [ -n "$hot" ] && [ -n "$cold" ] && \
       awk "BEGIN { exit !($cold > $hot + 0.10) }"; }; then
    echo "ok   fig-service-skew-aware: cold switch-off $cold staggered above hot $hot + 0.10"
  else
    echo "FAIL fig-service-skew-aware: cold switch-off '$cold' vs hot '$hot' out of band"
    fails=$((fails + 1))
  fi
else
  echo "FAIL fig-service-skew-aware: missing $dir/fig-service-skew-aware.txt"
  fails=$((fails + 1))
fi

# fig-service-ps-est: the previously rejected Estimated + PS + cancellation
# combination, under dispatch-time demand reporting, must land its
# switch-off within +-0.08 of the offline threshold with an unbiased mean
# estimate (completion reporting would have censored it toward ~0.0005 s).
if [ -f "$dir/fig-service-ps-est.txt" ]; then
  f="$dir/fig-service-ps-est.txt"
  so=$(grep -o 'planner switch-off load: [0-9.]*' "$f" | grep -o '[0-9.]*$')
  th=$(grep -o 'offline threshold: [0-9.]*' "$f" | grep -o '[0-9.]*$')
  em=$(grep -o 'estimated final mean service: [0-9.]*' "$f" | grep -o '[0-9.]*$')
  if [ -n "$so" ] && [ -n "$th" ] && awk "BEGIN { d = $so - $th; if (d < 0) d = -d; exit !(d <= 0.08) }"; then
    echo "ok   fig-service-ps-est: switch-off $so within 0.08 of threshold $th"
  else
    echo "FAIL fig-service-ps-est: switch-off '$so' vs threshold '$th' out of band"
    fails=$((fails + 1))
  fi
  if [ -n "$em" ] && awk "BEGIN { exit !($em >= 0.0009 && $em <= 0.0011) }"; then
    echo "ok   fig-service-ps-est: dispatch-reported mean $em unbiased (band [0.0009, 0.0011])"
  else
    echo "FAIL fig-service-ps-est: estimated mean '$em' outside [0.0009, 0.0011]"
    fails=$((fails + 1))
  fi
else
  echo "FAIL fig-service-ps-est: missing $dir/fig-service-ps-est.txt"
  fails=$((fails + 1))
fi

# fig-service-elastic: under a diurnal load over a cluster resizing
# 64 -> 256 -> 64, the planner's switch-off measured against the *live*
# server count must land within +-0.06 of the offline threshold, the
# autoscaler must reach its ceiling and return to its floor, and the ring
# migration must not lose a single request.
if [ -f "$dir/fig-service-elastic.txt" ]; then
  f="$dir/fig-service-elastic.txt"
  so=$(grep -o 'planner switch-off load (per live server): [0-9.]*' "$f" | grep -o '[0-9.]*$')
  th=$(grep -o 'offline threshold: [0-9.]*' "$f" | grep -o '[0-9.]*$')
  peak=$(grep -o 'peak live servers: [0-9]*' "$f" | grep -o '[0-9]*$')
  ceil=$(grep -o 'ceiling [0-9]*' "$f" | grep -o '[0-9]*$')
  fin=$(grep -o 'final live servers: [0-9]*' "$f" | grep -o '[0-9]*$')
  floor=$(grep -o 'floor [0-9]*' "$f" | grep -o '[0-9]*$')
  ev=$(grep -o 'scale events: [0-9]*' "$f" | grep -o '[0-9]*$')
  done_n=$(grep -o 'completed: [0-9]*' "$f" | grep -o '[0-9]*$')
  total_n=$(grep -o 'completed: [0-9]* of [0-9]*' "$f" | grep -o '[0-9]*$')
  if [ -n "$so" ] && [ -n "$th" ] && \
     awk "BEGIN { d = $so - $th; if (d < 0) d = -d; exit !(d <= 0.06) }"; then
    echo "ok   fig-service-elastic: switch-off $so within 0.06 of threshold $th"
  else
    echo "FAIL fig-service-elastic: switch-off '$so' vs threshold '$th' out of band"
    fails=$((fails + 1))
  fi
  if [ -n "$peak" ] && [ -n "$ceil" ] && [ -n "$fin" ] && [ -n "$floor" ] && \
     [ "$peak" -eq "$ceil" ] && [ "$fin" -eq "$floor" ]; then
    echo "ok   fig-service-elastic: scaled to ceiling $ceil and back to floor $floor"
  else
    echo "FAIL fig-service-elastic: peak '$peak' (ceiling '$ceil') / final '$fin' (floor '$floor')"
    fails=$((fails + 1))
  fi
  if [ -n "$ev" ] && [ "$ev" -ge 4 ]; then
    echo "ok   fig-service-elastic: $ev scale events (>= 4)"
  else
    echo "FAIL fig-service-elastic: scale events '$ev' below 4"
    fails=$((fails + 1))
  fi
  if [ -n "$done_n" ] && [ -n "$total_n" ] && [ "$done_n" -eq "$total_n" ]; then
    echo "ok   fig-service-elastic: $done_n of $total_n requests completed across migrations"
  else
    echo "FAIL fig-service-elastic: completed '$done_n' of '$total_n'"
    fails=$((fails + 1))
  fi
else
  echo "FAIL fig-service-elastic: missing $dir/fig-service-elastic.txt"
  fails=$((fails + 1))
fi

# Fig 16: 10-server mean reduction in the recorded band, tail strong.
check "fig16: k=10 mean reduction in [35, 80], p99 > 30" fig16.txt \
  'if ($1 == "10" && $2 >= 35 && $2 <= 80 && $5 > 30) ok = 1'

# Fig 15: the 500 ms tail shrinks severalfold with 10 servers.
if [ -f "$dir/fig15.txt" ]; then
  ratio=$(grep -o 'fraction later than 500 ms.*(\([0-9.]*\)x)' "$dir/fig15.txt" | grep -o '[0-9.]*x' | tr -d 'x')
  if [ -n "$ratio" ] && awk "BEGIN { exit !($ratio >= 3) }"; then
    echo "ok   fig15: 500 ms tail cut ${ratio}x >= 3x"
  else
    echo "FAIL fig15: 500 ms tail cut '$ratio' < 3x"
    fails=$((fails + 1))
  fi
else
  echo "FAIL fig15: missing $dir/fig15.txt"
  fails=$((fails + 1))
fi

if [ "$fails" -ne 0 ]; then
  echo "$fails headline check(s) failed against EXPERIMENTS.md bands"
  exit 1
fi
echo "all headline checks passed"
