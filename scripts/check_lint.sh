#!/usr/bin/env bash
# Guard: the determinism lint must (a) pass the real workspace and
# (b) still *fail* on code that violates a rule. Without (b), a lint
# binary that rotted into always-exiting-0 would keep CI green while
# enforcing nothing — this script is the negative test for the gate
# itself. It fabricates a tiny crate with a wall-clock read and a
# HashMap traversal and requires the lint to reject it, naming both
# rules, with file:line locations in --fix-check format.
# Usage: check_lint.sh <lint-binary> [workspace-root]
set -u
bin="${1:?usage: check_lint.sh <lint-binary> [workspace-root]}"
root="${2:-.}"
if [ ! -x "$bin" ]; then
  echo "usage: check_lint.sh <lint-binary> [workspace-root]"
  echo "FAIL: '$bin' is not an executable"
  exit 2
fi

# (a) The real workspace is clean.
if ! "$bin" --root "$root"; then
  echo "FAIL: lint reports violations in the workspace at '$root'"
  exit 1
fi

# (b) A deliberately dirty crate is rejected.
tmp=$(mktemp -d) || exit 2
trap 'rm -rf "$tmp"' EXIT
mkdir -p "$tmp/src"
cat > "$tmp/Cargo.toml" <<'EOF'
[package]
name = "lint-negative-probe"
version = "0.0.0"
edition = "2021"
EOF
cat > "$tmp/src/clock.rs" <<'EOF'
use std::time::SystemTime;
pub fn stamp() -> SystemTime {
    SystemTime::now()
}
pub fn drain(m: &std::collections::HashMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for (_k, v) in m.iter() {
        total += v;
    }
    total
}
EOF

out=$("$bin" --fix-check --root "$tmp")
status=$?
if [ "$status" -ne 1 ]; then
  echo "FAIL: lint exited $status on a crate with known violations (want 1)"
  echo "$out"
  exit 1
fi
for needle in "wall-clock" "map-iteration" "src/clock.rs:"; do
  if ! printf '%s\n' "$out" | grep -q "$needle"; then
    echo "FAIL: lint output does not mention '$needle':"
    echo "$out"
    exit 1
  fi
done
echo "lint gate verified: workspace clean, dirty probe rejected with file:line"
