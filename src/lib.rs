//! # low-latency-redundancy
//!
//! A full reproduction of **"Low Latency via Redundancy"** (Vulimiri,
//! Godfrey, Mittal, Sherry, Ratnasamy, Shenker — CoNEXT 2013) as a Rust
//! workspace: the reusable race-to-first-response library the paper argues
//! for, plus every simulator and analysis its evaluation rests on.
//!
//! This crate is a facade: it re-exports the member crates so downstream
//! users can depend on one name. See each crate for its own deep-dive docs:
//!
//! | crate | contents | paper section |
//! |-------|----------|---------------|
//! | [`redundancy`] | policies, thread/tokio race executors, planner | the technique itself |
//! | [`simcore`] | event kernel, RNG, distributions, statistics | substrate |
//! | [`queuesim`] | replicated-queue model, threshold load, analytics | §2.1, Figs 1–4 |
//! | [`storesim`] | disk-backed store + memcached simulators | §2.2–2.3, Figs 5–13 |
//! | [`netsim`] | fat-tree packet simulator, in-network replication | §2.4, Fig 14 |
//! | [`wansim`] | TCP-handshake and DNS replication models | §3, Figs 15–17 |
//!
//! The `repro` binary (crate `repro-bench`) regenerates every figure:
//!
//! ```text
//! cargo run --release -p repro-bench --bin repro -- all --out results
//! ```
//!
//! ## The one-paragraph result
//!
//! Replicating an operation to two diverse replicas and keeping the first
//! answer cuts both mean and tail latency *provided* the extra load lands
//! below a threshold utilization — between ≈ 26 % (deterministic service)
//! and 50 % (heavy-tailed service) when the client-side cost of the second
//! copy is negligible, collapsing toward zero as that cost approaches the
//! mean service time. The crates here verify that claim analytically
//! (Theorem 1's exact 1/3 for exponential service), in an abstract queueing
//! model, in a disk-backed storage cluster, in an in-memory cache (where
//! replication *loses* — the exception that validates the model), in a
//! 54-host packet-level fabric, and across wide-area DNS and TCP handshake
//! models.

#![forbid(unsafe_code)]

pub use netsim;
pub use queuesim;
pub use redundancy;
pub use simcore;
pub use storesim;
pub use wansim;
